"""Attention computation with pluggable token selection.

Two entry points are provided:

* :func:`full_causal_attention` — exact causal attention used during prefill
  (compression only applies to decoding, matching the paper's system).
* :func:`selected_attention` — single-query attention restricted to the
  tokens selected by a KV compression method, i.e. the approximation
  ``softmax(q K_S^T / sqrt(d)) V_S`` of paper Sec. II-B.

Grouped-query attention is supported: ``n_heads`` query heads share
``n_kv_heads`` key/value heads in contiguous groups.

Both entry points are vectorised across heads: all kv-head groups go
through one broadcast ``np.matmul`` (a batched GEMM) for the scores and one
for the weighted sum, instead of one GEMM per head.  Per-slice results of a
broadcast matmul are computed by the same BLAS kernel as the equivalent
2-D products, so the head-batched paths reproduce the historical per-head
loops bit for bit — pinned by ``tests/test_hotpath_equivalence.py``.  Long
prefills additionally process queries in cache-sized row blocks; blocking
changes GEMM kernel selection and with it last-bit rounding (suite-
verified, like the fused projection GEMMs).
:func:`selected_attention_batch` is the decode hot path: it takes the
per-kv-head selections as one stacked (optionally padded) tensor so that a
whole layer's attention is two GEMM launches regardless of head count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..perf import counters
from .tensor_ops import causal_mask, masked_fill, softmax

__all__ = [
    "AttentionOutput",
    "full_causal_attention",
    "selected_attention",
    "selected_attention_batch",
]


@dataclass
class AttentionOutput:
    """Result of one attention computation.

    Attributes
    ----------
    output:
        Concatenated per-head outputs; ``(T, n_heads * head_dim)`` for
        prefill or ``(n_heads * head_dim,)`` for single-token decode.
    weights:
        Per-query-head attention weights.  For decode this is a list of
        ``n_heads`` arrays aligned with the selected indices of the
        corresponding kv head; for prefill it is ``None`` unless explicitly
        requested (full weight tensors are large).
    """

    output: np.ndarray
    weights: list[np.ndarray] | None = None


# Score-tensor budget of one prefill query block: 256k float64 elements
# (2 MB) across all heads — measured sweet spot on long prompts, where
# cache locality of the score/softmax passes dominates; short prompts
# (scores below the budget) take the single-shot path.
_PREFILL_BLOCK_ELEMENTS = 1 << 18


def _check_group(n_heads: int, n_kv_heads: int) -> int:
    if n_heads % n_kv_heads != 0:
        raise ValueError(
            f"n_heads ({n_heads}) must be divisible by n_kv_heads ({n_kv_heads})"
        )
    return n_heads // n_kv_heads


def full_causal_attention(
    queries: np.ndarray,
    keys: np.ndarray,
    values: np.ndarray,
    scale: float,
    return_weights: bool = False,
) -> AttentionOutput:
    """Exact causal attention over the whole sequence.

    Parameters
    ----------
    queries:
        ``(n_heads, T_q, head_dim)``.
    keys, values:
        ``(n_kv_heads, T_k, head_dim)``; ``T_q <= T_k`` and the queries are
        the last ``T_q`` positions.
    scale:
        Softmax scale (``1/sqrt(head_dim)``).
    return_weights:
        When True, attention weights ``(n_heads, T_q, T_k)`` are also
        returned (used by the motivation analyses).
    """
    queries = np.asarray(queries, dtype=np.float64)
    keys = np.asarray(keys, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    n_heads, t_q, head_dim = queries.shape
    n_kv_heads, t_k, _ = keys.shape
    group = _check_group(n_heads, n_kv_heads)

    mask = causal_mask(t_q, t_k)
    grouped = queries.reshape(n_kv_heads, group, t_q, head_dim)
    keys_t = np.swapaxes(keys, 1, 2)[:, None]
    values_b = values[:, None]

    # Long prompts are processed in query-row blocks so the score tensor
    # stays cache-sized instead of materialising all n_heads * T_q * T_k
    # float64 entries at once (a 4k-token prompt would need gigabytes, and
    # locality of the mask/softmax passes dominates the wall clock).  Each
    # row's attention is the same mathematical computation either way;
    # last-bit rounding may differ between blocked and single-shot GEMM
    # kernels (suite-verified, like all GEMM re-batching in this module).
    # Weight-returning callers (analyses on short contexts) always take
    # the single-shot path.
    if return_weights or n_heads * t_q * t_k <= _PREFILL_BLOCK_ELEMENTS:
        block = t_q
    else:
        block = max(1, _PREFILL_BLOCK_ELEMENTS // (n_heads * t_k))
    stacked = np.empty((t_q, n_heads * head_dim))
    weights_list = None
    for start in range(0, t_q, block):
        end = min(start + block, t_q)
        # All heads in one pair of broadcast GEMMs: queries grouped by kv
        # head against (n_kv_heads, 1, head_dim, T_k) keys, then weights
        # against values.  The mask rows broadcast over the leading
        # (kv head, group) axes.
        scores = np.matmul(grouped[:, :, start:end], keys_t) * scale
        counters.record("gemm.attention_prefill", 2)
        scores = masked_fill(scores, mask[start:end])
        weights = softmax(scores, axis=-1)
        outputs = np.matmul(weights, values_b)  # (n_kv, group, rows, d)
        stacked[start:end] = (
            outputs.reshape(n_heads, end - start, head_dim)
            .transpose(1, 0, 2)
            .reshape(end - start, n_heads * head_dim)
        )
        if return_weights:
            per_head = weights.reshape(n_heads, t_q, t_k)
            weights_list = [per_head[head] for head in range(n_heads)]
    return AttentionOutput(output=stacked, weights=weights_list)


def selected_attention_batch(
    queries: np.ndarray,
    keys: np.ndarray,
    values: np.ndarray,
    scale: float,
    lengths: np.ndarray | None = None,
    return_weights: bool = False,
) -> AttentionOutput:
    """Single-token attention over stacked per-kv-head selections.

    The decode hot path: the selected keys/values of *all* kv heads arrive
    as one tensor, so the whole layer's attention is two batched GEMMs
    (scores, weighted sum) independent of the head count.

    Parameters
    ----------
    queries:
        ``(n_heads, head_dim)`` query vectors of the current token.
    keys / values:
        ``(n_kv_heads, S, head_dim)``.  When per-head selection sizes
        differ, heads are right-padded to the longest selection and
        ``lengths`` marks the valid prefix of each head; padded entries
        must be finite (their scores are masked to ``-inf``, so their
        softmax weight is exactly zero and the result equals the unpadded
        computation bit for bit).
    scale:
        Softmax scale.
    lengths:
        Optional ``(n_kv_heads,)`` valid selection length per head;
        ``None`` means every head uses all ``S`` entries.
    return_weights:
        When True, per-query-head weights (trimmed to each head's valid
        length) are returned; the default skips materialising them — the
        engine only needs weights when an attention trace is recorded.

    Returns
    -------
    AttentionOutput
        Output of shape ``(n_heads * head_dim,)`` and, when requested,
        per-query-head attention weights aligned with each kv head's
        selected tokens.
    """
    if not isinstance(queries, np.ndarray) or queries.dtype != np.float64:
        queries = np.asarray(queries, dtype=np.float64)
    if not isinstance(keys, np.ndarray) or keys.dtype != np.float64:
        keys = np.asarray(keys, dtype=np.float64)
    if not isinstance(values, np.ndarray) or values.dtype != np.float64:
        values = np.asarray(values, dtype=np.float64)
    n_heads, head_dim = queries.shape
    n_kv_heads, max_selected, _ = keys.shape
    group = _check_group(n_heads, n_kv_heads)
    if lengths is not None:
        lengths = np.asarray(lengths, dtype=np.int64)
        empty = np.flatnonzero(lengths <= 0)
        if empty.size:
            raise ValueError(f"kv head {int(empty[0])} has no selected tokens")
    elif max_selected == 0:
        raise ValueError("kv head 0 has no selected tokens")

    grouped = queries.reshape(n_kv_heads, group, head_dim)
    scores = np.matmul(grouped, np.swapaxes(keys, 1, 2)) * scale
    counters.record("gemm.attention_decode", 2)
    if lengths is not None:
        # In-place tail masking (cheaper than a broadcast np.where and
        # bit-identical: the same padded entries become -inf).
        for kv_head in range(n_kv_heads):
            valid = lengths[kv_head]
            if valid < max_selected:
                scores[kv_head, :, valid:] = -np.inf
    weights = softmax(scores, axis=-1)
    output = np.matmul(weights, values)  # (n_kv_heads, group, head_dim)

    weights_list: list[np.ndarray] | None = None
    if return_weights:
        weights_list = []
        for kv_head in range(n_kv_heads):
            valid = max_selected if lengths is None else int(lengths[kv_head])
            weights_list.extend(
                weights[kv_head, g, :valid] for g in range(group)
            )
    return AttentionOutput(output=output.reshape(-1), weights=weights_list)


def selected_attention(
    queries: np.ndarray,
    keys_per_kv_head: list[np.ndarray],
    values_per_kv_head: list[np.ndarray],
    scale: float,
    return_weights: bool = True,
) -> AttentionOutput:
    """Single-token attention restricted to selected KV entries.

    Parameters
    ----------
    queries:
        ``(n_heads, head_dim)`` query vectors of the current token.
    keys_per_kv_head / values_per_kv_head:
        One ``(S_h, head_dim)`` array per kv head containing the keys and
        values of the tokens selected for that head (``S_h`` may differ
        between heads — semantic clusters have variable sizes).  A stacked
        ``(n_kv_heads, S, head_dim)`` array is also accepted and avoids
        the per-head restacking.
    scale:
        Softmax scale.
    return_weights:
        Whether per-query-head attention weights are materialised.

    Returns
    -------
    AttentionOutput
        Output of shape ``(n_heads * head_dim,)`` and per-query-head
        attention weights aligned with each kv head's selected tokens.
    """
    if isinstance(keys_per_kv_head, np.ndarray) and keys_per_kv_head.ndim == 3:
        return selected_attention_batch(
            queries,
            keys_per_kv_head,
            np.asarray(values_per_kv_head, dtype=np.float64),
            scale,
            return_weights=return_weights,
        )
    lengths = np.asarray([k.shape[0] for k in keys_per_kv_head], dtype=np.int64)
    empty = np.flatnonzero(lengths <= 0)
    if empty.size:
        raise ValueError(f"kv head {int(empty[0])} has no selected tokens")
    head_dim = keys_per_kv_head[0].shape[1]
    max_selected = int(lengths.max())
    if bool((lengths == max_selected).all()):
        keys = np.stack([np.asarray(k, dtype=np.float64) for k in keys_per_kv_head])
        values = np.stack(
            [np.asarray(v, dtype=np.float64) for v in values_per_kv_head]
        )
        return selected_attention_batch(
            queries, keys, values, scale, return_weights=return_weights
        )
    keys = np.zeros((lengths.shape[0], max_selected, head_dim))
    values = np.zeros_like(keys)
    for kv_head, (k, v) in enumerate(zip(keys_per_kv_head, values_per_kv_head)):
        keys[kv_head, : lengths[kv_head]] = k
        values[kv_head, : lengths[kv_head]] = v
    return selected_attention_batch(
        queries, keys, values, scale, lengths=lengths, return_weights=return_weights
    )
