"""Decoder-only transformer built on the NumPy primitives.

:class:`TransformerModel` exposes the per-layer building blocks (embedding,
QKV projection with RoPE, attention output projection, feed-forward block
and final logits) as separate methods so that the inference engine in
:mod:`repro.model.generation` can interleave them with KV cache management
and token selection — mirroring how the paper's system hooks clustering and
selection into the decoding loop (paper Fig. 5 and Fig. 6).
"""

from __future__ import annotations

import numpy as np

from .config import ModelConfig
from .tensor_ops import (
    apply_rope,
    gelu,
    layer_norm,
    rms_norm,
    rope_frequencies,
    swiglu,
)
from .weights import ModelWeights, init_weights

__all__ = ["TransformerModel"]


class TransformerModel:
    """A decoder-only transformer with deterministic synthetic weights."""

    def __init__(self, config: ModelConfig, weights: ModelWeights | None = None) -> None:
        self.config = config
        self.weights = weights if weights is not None else init_weights(config)
        if self.weights.config is not config and self.weights.config != config:
            raise ValueError("weights were initialised for a different configuration")
        self._inv_freq = (
            rope_frequencies(config.head_dim, config.rope_base)
            if config.use_rope
            else None
        )
        # Fused projection weights, one per layer: the per-head Q/K/V
        # projections concatenated column-wise into a single (d_model,
        # (n_heads + 2 n_kv_heads) * head_dim) matrix, and the SwiGLU
        # gate/up pair into (d_model, 2 d_ff).  One GEMM per projection
        # group replaces the per-head einsum / split matmuls on the decode
        # hot path; each output column block is the same matrix product, so
        # results match the unfused computation (suite-verified).
        # Fork safety: multiprocess-backend workers rebuild these fused
        # arrays from the shared read-only weight arena with this exact
        # concatenation, so they are bit-identical across processes
        # (asserted by MultiprocessBackend.model_digests()).
        self._q_cols = config.n_heads * config.head_dim
        self._kv_cols = config.n_kv_heads * config.head_dim
        self._wqkv = [
            np.concatenate(
                [
                    layer.wq.transpose(1, 0, 2).reshape(config.d_model, -1),
                    layer.wk.transpose(1, 0, 2).reshape(config.d_model, -1),
                    layer.wv.transpose(1, 0, 2).reshape(config.d_model, -1),
                ],
                axis=1,
            )
            for layer in self.weights.layers
        ]
        self._w_gate_up = (
            [
                np.concatenate([layer.w_gate, layer.w_up], axis=1)
                for layer in self.weights.layers
            ]
            if config.activation == "swiglu"
            else None
        )

    # ------------------------------------------------------------------
    # embedding and output
    # ------------------------------------------------------------------
    def embed(self, token_ids: np.ndarray, positions: np.ndarray) -> np.ndarray:
        """Token (plus positional, for OPT-style models) embeddings.

        Returns an array of shape ``(T, d_model)``.
        """
        token_ids = np.asarray(token_ids, dtype=np.int64)
        positions = np.asarray(positions, dtype=np.int64)
        if token_ids.shape != positions.shape:
            raise ValueError("token_ids and positions must have the same length")
        if token_ids.size and (token_ids.min() < 0 or token_ids.max() >= self.config.vocab_size):
            raise ValueError("token id out of vocabulary range")
        hidden = self.weights.embedding[token_ids]
        if self.weights.position_embedding is not None:
            if positions.size and positions.max() >= self.weights.position_embedding.shape[0]:
                raise ValueError("position exceeds max_position_embeddings")
            hidden = hidden + self.weights.position_embedding[positions]
        return hidden

    def final_logits(self, hidden: np.ndarray) -> np.ndarray:
        """Vocabulary logits of the given hidden states, shape ``(T, vocab)``."""
        normed = self._norm(
            hidden, self.weights.final_norm_weight, self.weights.final_norm_bias
        )
        return normed @ self.weights.lm_head

    # ------------------------------------------------------------------
    # per-layer blocks
    # ------------------------------------------------------------------
    def attention_qkv(
        self, layer_idx: int, hidden: np.ndarray, positions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Project hidden states to (rotated) queries, keys and values.

        Returns ``q`` of shape ``(n_heads, T, head_dim)`` and ``k``/``v`` of
        shape ``(n_kv_heads, T, head_dim)``.
        """
        layer = self.weights.layers[layer_idx]
        positions = np.asarray(positions, dtype=np.int64)
        normed = self._norm(hidden, layer.attn_norm_weight, layer.attn_norm_bias)

        # One fused GEMM for all Q/K/V heads, then per-head views: column
        # blocks of the fused product equal the per-head projections.
        t = normed.shape[0]
        head_dim = self.config.head_dim
        fused = normed @ self._wqkv[layer_idx]
        q_cols, kv_cols = self._q_cols, self._kv_cols
        q = fused[:, :q_cols].reshape(t, self.config.n_heads, head_dim)
        k = fused[:, q_cols : q_cols + kv_cols].reshape(
            t, self.config.n_kv_heads, head_dim
        )
        v = fused[:, q_cols + kv_cols :].reshape(t, self.config.n_kv_heads, head_dim)
        q = q.swapaxes(0, 1)
        k = k.swapaxes(0, 1)
        v = v.swapaxes(0, 1)
        if self._inv_freq is not None:
            q = apply_rope(q, positions, self._inv_freq)
            k = apply_rope(k, positions, self._inv_freq)
        return q, k, v

    def attention_output(
        self, layer_idx: int, hidden: np.ndarray, attn_concat: np.ndarray
    ) -> np.ndarray:
        """Apply the output projection and the residual connection."""
        layer = self.weights.layers[layer_idx]
        return hidden + attn_concat @ layer.wo

    def ffn(self, layer_idx: int, hidden: np.ndarray) -> np.ndarray:
        """Feed-forward block with residual connection."""
        layer = self.weights.layers[layer_idx]
        normed = self._norm(hidden, layer.ffn_norm_weight, layer.ffn_norm_bias)
        if self._w_gate_up is not None:
            # Fused gate/up GEMM; the two column halves equal the separate
            # products.
            fused = normed @ self._w_gate_up[layer_idx]
            d_ff = self.config.d_ff
            inner = swiglu(fused[:, :d_ff], fused[:, d_ff:])
        else:
            inner = gelu(normed @ layer.w_gate)
        return hidden + inner @ layer.w_down

    # ------------------------------------------------------------------
    # convenience full forward (used by tests and small-scale checks)
    # ------------------------------------------------------------------
    def forward_full(self, token_ids: np.ndarray) -> np.ndarray:
        """Full forward pass with exact attention; returns ``(T, vocab)`` logits.

        Intended for testing and tiny inputs; generation should go through
        :class:`repro.model.generation.InferenceEngine`.
        """
        from .attention import full_causal_attention  # local import avoids cycle

        token_ids = np.asarray(token_ids, dtype=np.int64)
        positions = np.arange(token_ids.shape[0])
        hidden = self.embed(token_ids, positions)
        for layer_idx in range(self.config.n_layers):
            q, k, v = self.attention_qkv(layer_idx, hidden, positions)
            attn = full_causal_attention(q, k, v, self.config.softmax_scale)
            hidden = self.attention_output(layer_idx, hidden, attn.output)
            hidden = self.ffn(layer_idx, hidden)
        return self.final_logits(hidden)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _norm(
        self, hidden: np.ndarray, weight: np.ndarray, bias: np.ndarray
    ) -> np.ndarray:
        if self.config.norm_type == "rmsnorm":
            return rms_norm(hidden, weight)
        return layer_norm(hidden, weight, bias)

    @property
    def num_parameters(self) -> int:
        """Total parameter count of the model."""
        return self.weights.num_parameters()
