"""Deterministic weight construction for the NumPy transformer substrate.

The reproduction cannot download trained checkpoints (offline environment),
so model weights are constructed synthetically but *structured* so that the
attention behaviour relevant to the paper emerges:

* attention is sparse — a small subset of context tokens receives most of the
  softmax mass for a given query (paper Sec. II-B), and
* tokens that are close in key space receive similar attention weights
  (paper Sec. III-A), which is what ClusterKV exploits.

Both properties follow from giving every head's query and key projections a
shared "retrieval" component (a common random semi-orthogonal projection of
the residual stream) plus an independent per-head noise component.  With unit
norm, topic-structured token embeddings, the resulting ``q·k`` scores are
dominated by embedding similarity: queries attend to context tokens carrying
similar content, and similar context tokens form tight groups in key space.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .config import ModelConfig

__all__ = ["LayerWeights", "ModelWeights", "init_weights"]


@dataclass
class LayerWeights:
    """Weights of a single transformer layer.

    Shapes:

    * ``wq``: ``(n_heads, d_model, head_dim)``
    * ``wk``/``wv``: ``(n_kv_heads, d_model, head_dim)``
    * ``wo``: ``(n_heads * head_dim, d_model)``
    * feed-forward: ``w_gate``/``w_up``: ``(d_model, d_ff)``, ``w_down``:
      ``(d_ff, d_model)``
    * norms: ``(d_model,)`` vectors (bias only used for LayerNorm).
    """

    wq: np.ndarray
    wk: np.ndarray
    wv: np.ndarray
    wo: np.ndarray
    w_gate: np.ndarray
    w_up: np.ndarray
    w_down: np.ndarray
    attn_norm_weight: np.ndarray
    attn_norm_bias: np.ndarray
    ffn_norm_weight: np.ndarray
    ffn_norm_bias: np.ndarray


@dataclass
class ModelWeights:
    """Full parameter set of the model."""

    config: ModelConfig
    embedding: np.ndarray  # (vocab_size, d_model)
    position_embedding: np.ndarray | None  # (max_positions, d_model) or None
    layers: list[LayerWeights] = field(default_factory=list)
    final_norm_weight: np.ndarray | None = None
    final_norm_bias: np.ndarray | None = None
    lm_head: np.ndarray | None = None  # (d_model, vocab_size)
    copy_query_proj: np.ndarray | None = None  # (d_model, d_model)
    copy_key_proj: np.ndarray | None = None  # (d_model, d_model)
    copy_prev_proj: np.ndarray | None = None  # (d_model, d_model)

    def num_parameters(self) -> int:
        """Total number of scalar parameters (for reporting)."""
        total = self.embedding.size
        if self.position_embedding is not None:
            total += self.position_embedding.size
        for layer in self.layers:
            total += (
                layer.wq.size
                + layer.wk.size
                + layer.wv.size
                + layer.wo.size
                + layer.w_gate.size
                + layer.w_up.size
                + layer.w_down.size
                + layer.attn_norm_weight.size
                + layer.attn_norm_bias.size
                + layer.ffn_norm_weight.size
                + layer.ffn_norm_bias.size
            )
        if self.final_norm_weight is not None:
            total += self.final_norm_weight.size
        if self.final_norm_bias is not None:
            total += self.final_norm_bias.size
        if self.lm_head is not None:
            total += self.lm_head.size
        if self.copy_query_proj is not None:
            total += self.copy_query_proj.size
        if self.copy_key_proj is not None:
            total += self.copy_key_proj.size
        if self.copy_prev_proj is not None:
            total += self.copy_prev_proj.size
        return total


def _random_semi_orthogonal(
    rng: np.random.Generator, rows: int, cols: int
) -> np.ndarray:
    """Random matrix with (approximately) orthonormal columns."""
    raw = rng.normal(size=(rows, max(rows, cols)))
    q, _ = np.linalg.qr(raw)
    return q[:, :cols]


def _unit_rows(matrix: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    return matrix / norms


def init_weights(config: ModelConfig) -> ModelWeights:
    """Build a deterministic, structured weight set for ``config``.

    The construction is fully determined by ``config.seed`` so that every
    experiment in the reproduction is repeatable bit-for-bit.
    """
    rng = np.random.default_rng(config.seed)
    d_model = config.d_model
    head_dim = config.head_dim

    # Token embeddings: unit-norm directions with topical cluster structure.
    # Token ids are partitioned into contiguous blocks; tokens in a block
    # share a cluster centre plus an individual component.  This is what
    # gives keys of semantically related tokens similar directions — the
    # property ClusterKV exploits (paper Sec. III-A) — and what the
    # synthetic workloads' topic model aligns with.
    num_clusters = min(config.num_embedding_clusters, config.vocab_size)
    centres = _unit_rows(rng.normal(size=(num_clusters, d_model)))
    individual = _unit_rows(rng.normal(size=(config.vocab_size, d_model)))
    cluster_ids = (
        np.arange(config.vocab_size) * num_clusters // config.vocab_size
    ).astype(np.int64)
    weight = config.embedding_cluster_weight
    embedding = _unit_rows(
        weight * centres[cluster_ids] + (1.0 - weight) * individual
    )

    position_embedding = None
    if not config.use_rope:
        # OPT-style learned absolute position embeddings, small magnitude so
        # that content similarity still dominates attention scores.
        position_embedding = 0.05 * rng.normal(
            size=(config.max_position_embeddings, d_model)
        )

    layers: list[LayerWeights] = []
    for _layer_idx in range(config.n_layers):
        # Shared retrieval projection for this layer: queries and keys of all
        # heads share it, so q·k tracks embedding similarity.
        shared = _random_semi_orthogonal(rng, d_model, head_dim)

        wq = np.empty((config.n_heads, d_model, head_dim))
        for h in range(config.n_heads):
            noise = rng.normal(size=(d_model, head_dim)) / np.sqrt(d_model)
            wq[h] = config.retrieval_strength * shared + config.noise_strength * noise

        wk = np.empty((config.n_kv_heads, d_model, head_dim))
        wv = np.empty((config.n_kv_heads, d_model, head_dim))
        for h in range(config.n_kv_heads):
            noise = rng.normal(size=(d_model, head_dim)) / np.sqrt(d_model)
            wk[h] = config.retrieval_strength * shared + config.noise_strength * noise
            wv[h] = rng.normal(size=(d_model, head_dim)) / np.sqrt(d_model)

        wo = rng.normal(size=(config.n_heads * head_dim, d_model)) / np.sqrt(
            config.n_heads * head_dim
        )

        w_gate = rng.normal(size=(d_model, config.d_ff)) / np.sqrt(d_model)
        w_up = rng.normal(size=(d_model, config.d_ff)) / np.sqrt(d_model)
        w_down = rng.normal(size=(config.d_ff, d_model)) / np.sqrt(config.d_ff)

        layers.append(
            LayerWeights(
                wq=wq,
                wk=wk,
                wv=wv,
                wo=wo,
                w_gate=w_gate,
                w_up=w_up,
                w_down=w_down,
                attn_norm_weight=np.ones(d_model),
                attn_norm_bias=np.zeros(d_model),
                ffn_norm_weight=np.ones(d_model),
                ffn_norm_bias=np.zeros(d_model),
            )
        )

    lm_head = embedding.T.copy()  # weight tying, (d_model, vocab)

    copy_query_proj = None
    copy_key_proj = None
    copy_prev_proj = None
    if config.use_copy_head:
        # The copy head scores a bigram signature of the current step
        # (current token plus its predecessor) against the same signature of
        # every context position; shared projections keep the match
        # content-based, and the predecessor component disambiguates
        # different occurrences of the same word by their local context.
        shared_copy = _random_semi_orthogonal(rng, d_model, d_model)
        copy_query_proj = shared_copy
        copy_key_proj = shared_copy.copy()
        copy_prev_proj = _random_semi_orthogonal(rng, d_model, d_model)

    return ModelWeights(
        config=config,
        embedding=embedding,
        position_embedding=position_embedding,
        layers=layers,
        final_norm_weight=np.ones(d_model),
        final_norm_bias=np.zeros(d_model),
        lm_head=lm_head,
        copy_query_proj=copy_query_proj,
        copy_key_proj=copy_key_proj,
        copy_prev_proj=copy_prev_proj,
    )
