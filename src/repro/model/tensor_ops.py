"""Numerical primitives for the NumPy transformer inference substrate.

All operations are pure functions over ``numpy.ndarray`` and are written to
mirror the reference Transformer arithmetic used by Llama/GLM/OPT-style
models: softmax, RMSNorm, LayerNorm, SiLU/GELU activations and rotary
position embeddings (RoPE).

The functions operate on float64 or float32 arrays; dtype is preserved where
possible.  Shapes follow the conventions used throughout :mod:`repro.model`:

* sequence tensors are ``(L, d)`` (sequence length by hidden size),
* per-head tensors are ``(H, L, d_head)``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "softmax",
    "log_softmax",
    "rms_norm",
    "layer_norm",
    "silu",
    "gelu",
    "swiglu",
    "rope_frequencies",
    "apply_rope",
    "causal_mask",
    "masked_fill",
    "stable_dot",
]


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``.

    Subtracting the per-slice maximum before exponentiation avoids overflow
    for large logits, which occur routinely in attention score computation
    with long contexts.
    """
    if not isinstance(x, np.ndarray) or x.dtype != np.float64:
        x = np.asarray(x, dtype=np.float64)
    # Method-call reductions avoid the np.max/np.sum dispatch wrappers; this
    # sits on the per-head decode hot path and is called once per attention.
    shifted = x - x.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax along ``axis``."""
    x = np.asarray(x, dtype=np.float64)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    log_norm = np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))
    return shifted - log_norm


def rms_norm(x: np.ndarray, weight: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Root-mean-square layer normalisation (as used by Llama/GLM).

    ``x`` has shape ``(..., d)`` and ``weight`` has shape ``(d,)``.
    """
    x = np.asarray(x, dtype=np.float64)
    variance = np.mean(np.square(x), axis=-1, keepdims=True)
    return x / np.sqrt(variance + eps) * weight


def layer_norm(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray,
    eps: float = 1e-5,
) -> np.ndarray:
    """Standard layer normalisation (as used by OPT).

    ``x`` has shape ``(..., d)``; ``weight`` and ``bias`` have shape ``(d,)``.
    """
    x = np.asarray(x, dtype=np.float64)
    mean = np.mean(x, axis=-1, keepdims=True)
    variance = np.var(x, axis=-1, keepdims=True)
    return (x - mean) / np.sqrt(variance + eps) * weight + bias


def silu(x: np.ndarray) -> np.ndarray:
    """SiLU (a.k.a. swish) activation: ``x * sigmoid(x)``."""
    x = np.asarray(x, dtype=np.float64)
    return x / (1.0 + np.exp(-x))


def gelu(x: np.ndarray) -> np.ndarray:
    """GELU activation using the tanh approximation (OPT/GPT style)."""
    x = np.asarray(x, dtype=np.float64)
    inner = np.sqrt(2.0 / np.pi) * (x + 0.044715 * np.power(x, 3))
    return 0.5 * x * (1.0 + np.tanh(inner))


def swiglu(gate: np.ndarray, up: np.ndarray) -> np.ndarray:
    """SwiGLU gating: ``silu(gate) * up`` (Llama/GLM feed-forward)."""
    return silu(gate) * np.asarray(up, dtype=np.float64)


def rope_frequencies(head_dim: int, base: float = 10000.0) -> np.ndarray:
    """Inverse frequencies for rotary position embeddings.

    Returns an array of shape ``(head_dim // 2,)``.
    """
    if head_dim % 2 != 0:
        raise ValueError(f"RoPE requires an even head dimension, got {head_dim}")
    exponents = np.arange(0, head_dim, 2, dtype=np.float64) / head_dim
    return 1.0 / np.power(base, exponents)


# Cos/sin tables of integer positions, keyed by the inverse-frequency bytes
# (one entry per (head_dim, base) pair in practice).  Tables grow by doubling
# and are shared by every model with the same RoPE parameters; recomputing
# ``np.cos``/``np.sin`` of the full angle matrix on every prefill and decode
# call was one of the measured hot-path costs this cache removes.  Entries for
# integer positions are bit-identical to direct evaluation: the table stores
# ``cos(p * inv_freq)`` for the same float64 product the direct path computes.
#
# Fork safety (repro.execbackend multiprocess backend): this cache is plain
# process-local memoisation of a pure function of ``(inv_freq, needed)``.  A
# forked worker inherits a snapshot and a spawned worker starts empty; either
# way every process recomputes identical float64 tables on demand, so cached
# vs freshly computed entries can never diverge across processes.  The
# backend's parity tests assert this by byte-comparing serial and
# multiprocess reports.
_ROPE_TABLE_CACHE: dict[bytes, tuple[np.ndarray, np.ndarray]] = {}


def _rope_tables(inv_freq: np.ndarray, needed: int) -> tuple[np.ndarray, np.ndarray]:
    """Cos/sin tables covering positions ``[0, needed)`` for ``inv_freq``."""
    key = inv_freq.tobytes()
    entry = _ROPE_TABLE_CACHE.get(key)
    if entry is None or entry[0].shape[0] < needed:
        capacity = 64 if entry is None else entry[0].shape[0]
        while capacity < needed:
            capacity *= 2
        angles = np.outer(np.arange(capacity, dtype=np.float64), inv_freq)
        entry = (np.cos(angles), np.sin(angles))
        _ROPE_TABLE_CACHE[key] = entry
    return entry


def apply_rope(
    x: np.ndarray,
    positions: np.ndarray,
    inv_freq: np.ndarray,
) -> np.ndarray:
    """Apply rotary position embeddings to per-head vectors.

    Parameters
    ----------
    x:
        Array of shape ``(..., L, d_head)``.
    positions:
        Integer array of shape ``(L,)`` giving the absolute position of each
        token in the sequence.
    inv_freq:
        Inverse frequencies from :func:`rope_frequencies`, shape
        ``(d_head // 2,)``.

    Returns
    -------
    numpy.ndarray
        Array of the same shape as ``x`` with rotations applied pairwise to
        the ``(even, odd)`` channel halves, following the Llama convention
        where the head dimension is split into two contiguous halves.
    """
    x = np.asarray(x, dtype=np.float64)
    positions = np.asarray(positions)
    if x.shape[-2] != positions.shape[0]:
        raise ValueError(
            f"positions length {positions.shape[0]} does not match sequence "
            f"length {x.shape[-2]}"
        )
    half = x.shape[-1] // 2
    if inv_freq.shape[0] != half:
        raise ValueError(
            f"inv_freq length {inv_freq.shape[0]} does not match half head "
            f"dimension {half}"
        )
    length = positions.shape[0]
    if length and np.issubdtype(positions.dtype, np.integer) and int(positions.min()) >= 0:
        # Cached-table path for the (universal in this codebase) case of
        # non-negative integer positions: look the rows up instead of
        # recomputing cos/sin of the whole angle matrix every call.
        cos_table, sin_table = _rope_tables(inv_freq, int(positions.max()) + 1)
        if length == 1:
            # Single-token decode: one row, sliced without a gather copy.
            start = int(positions[0])
            cos = cos_table[start : start + 1]
            sin = sin_table[start : start + 1]
        elif int(positions[0]) + length - 1 == int(positions[-1]) and bool(
            (positions[1:] - positions[:-1] == 1).all()
        ):
            # Contiguous position range (prefill): a table slice, no copy.
            start = int(positions[0])
            cos = cos_table[start : start + length]
            sin = sin_table[start : start + length]
        else:
            cos = cos_table[positions]
            sin = sin_table[positions]
    else:
        # Fallback for float or negative positions: direct evaluation.
        positions = np.asarray(positions, dtype=np.float64)
        angles = np.outer(positions, inv_freq)  # (L, d_head // 2)
        cos = np.cos(angles)
        sin = np.sin(angles)
    x1 = x[..., :half]
    x2 = x[..., half:]
    # Write the two rotated halves into one preallocated output instead of
    # concatenating fresh halves (same values, one fewer allocation+copy).
    rotated = np.empty(x.shape)
    np.multiply(x1, cos, out=rotated[..., :half])
    rotated[..., :half] -= x2 * sin
    np.multiply(x2, cos, out=rotated[..., half:])
    rotated[..., half:] += x1 * sin
    return rotated


def causal_mask(query_len: int, key_len: int) -> np.ndarray:
    """Boolean causal mask of shape ``(query_len, key_len)``.

    Entry ``[i, j]`` is ``True`` when query ``i`` may attend to key ``j``.
    The queries are assumed to be the *last* ``query_len`` positions of a
    ``key_len``-long sequence (standard prefill convention).
    """
    if query_len > key_len:
        raise ValueError(
            f"query_len {query_len} cannot exceed key_len {key_len}"
        )
    offset = key_len - query_len
    cols = np.arange(key_len)[None, :]
    rows = np.arange(query_len)[:, None] + offset
    return cols <= rows


def masked_fill(scores: np.ndarray, mask: np.ndarray, value: float = -1e30) -> np.ndarray:
    """Return ``scores`` with positions where ``mask`` is False set to ``value``."""
    scores = np.asarray(scores, dtype=np.float64)
    return np.where(mask, scores, value)


def stable_dot(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product computed in float64 regardless of input dtype."""
    return np.asarray(a, dtype=np.float64) @ np.asarray(b, dtype=np.float64)
