"""Model zoo: scaled-down simulation configs and full-size reference shapes.

Two kinds of model descriptions live here:

* **Simulation configs** (:func:`get_model_config`): small, deterministic
  :class:`~repro.model.config.ModelConfig` instances that run quickly on a
  CPU with NumPy.  Their architecture *family* mirrors the models the paper
  evaluates (GQA + RoPE + RMSNorm for Llama/GLM, MHA + learned positions +
  LayerNorm for OPT), so the KV-compression code paths exercised are the
  same, only the width/depth is reduced.
* **Reference architectures** (:func:`get_reference_architecture`): the
  full-size shapes of GLM4-9B-Chat, Llama-3.1-8B and OPT-6.7B.  These feed
  the analytical performance model, which reproduces the latency and
  throughput experiments (paper Fig. 12/13) at the paper's true scale.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import ModelConfig

__all__ = [
    "ReferenceArchitecture",
    "get_model_config",
    "get_reference_architecture",
    "list_model_configs",
    "list_reference_architectures",
]


@dataclass(frozen=True)
class ReferenceArchitecture:
    """Full-size architecture shape used by the performance model.

    Attributes mirror the published model cards; ``bytes_per_element`` is 2
    (fp16), matching the paper's inference setup.
    """

    name: str
    d_model: int
    n_layers: int
    n_heads: int
    n_kv_heads: int
    d_ff: int
    vocab_size: int
    bytes_per_element: int = 2

    @property
    def head_dim(self) -> int:
        """Per-head hidden dimension."""
        return self.d_model // self.n_heads

    @property
    def num_parameters(self) -> int:
        """Approximate parameter count (embeddings + attention + FFN)."""
        attn = self.n_layers * (
            self.d_model * self.n_heads * self.head_dim  # Wq
            + 2 * self.d_model * self.n_kv_heads * self.head_dim  # Wk, Wv
            + self.n_heads * self.head_dim * self.d_model  # Wo
        )
        # Llama-style FFN has three projections; OPT-style has two.  Use
        # three as a uniform upper bound — the perf model is dominated by
        # memory traffic, not by this constant.
        ffn = self.n_layers * 3 * self.d_model * self.d_ff
        embed = 2 * self.vocab_size * self.d_model
        return attn + ffn + embed

    def kv_bytes_per_token(self) -> int:
        """Bytes of KV cache per token across all layers."""
        return (
            2 * self.n_layers * self.n_kv_heads * self.head_dim * self.bytes_per_element
        )


_SIM_CONFIGS: dict[str, ModelConfig] = {
    # Small config for unit tests.
    "tiny": ModelConfig(
        name="tiny",
        vocab_size=256,
        d_model=64,
        n_layers=3,
        n_heads=4,
        n_kv_heads=2,
        d_ff=128,
        norm_type="rmsnorm",
        activation="swiglu",
        use_rope=True,
        seed=0,
    ),
    # Llama-3.1-8B analogue: GQA, RoPE, RMSNorm, SwiGLU.
    "llama-sim": ModelConfig(
        name="llama-sim",
        vocab_size=1024,
        d_model=128,
        n_layers=4,
        n_heads=8,
        n_kv_heads=4,
        d_ff=256,
        norm_type="rmsnorm",
        activation="swiglu",
        use_rope=True,
        seed=1,
    ),
    # GLM4-9B-Chat analogue: the long-context accuracy model of the paper.
    "glm-sim": ModelConfig(
        name="glm-sim",
        vocab_size=1024,
        d_model=128,
        n_layers=4,
        n_heads=8,
        n_kv_heads=2,
        d_ff=256,
        norm_type="rmsnorm",
        activation="swiglu",
        use_rope=True,
        seed=2,
    ),
    # Serving-benchmark analogue: keeps the Llama-style family but with the
    # FFN/vocab proportions of real 8-9B models (d_ff = 4 * d_model, larger
    # vocabulary), so that decode cost is dominated by the batchable
    # per-token matmuls rather than Python overhead — the regime in which
    # continuous batching pays off on real hardware.  The pointer head is
    # disabled: serving throughput experiments do not need retrieval
    # workloads and its per-token host-side work is per-request.
    "serve-sim": ModelConfig(
        name="serve-sim",
        vocab_size=2048,
        d_model=128,
        n_layers=4,
        n_heads=8,
        n_kv_heads=4,
        d_ff=512,
        norm_type="rmsnorm",
        activation="swiglu",
        use_rope=True,
        use_copy_head=False,
        seed=11,
    ),
    # OPT-6.7B analogue: MHA, learned positions, LayerNorm, GELU.
    "opt-sim": ModelConfig(
        name="opt-sim",
        vocab_size=1024,
        d_model=128,
        n_layers=4,
        n_heads=8,
        n_kv_heads=8,
        d_ff=256,
        norm_type="layernorm",
        activation="gelu",
        use_rope=False,
        max_position_embeddings=8192,
        seed=3,
    ),
}


_REFERENCE_ARCHS: dict[str, ReferenceArchitecture] = {
    "llama-3.1-8b": ReferenceArchitecture(
        name="llama-3.1-8b",
        d_model=4096,
        n_layers=32,
        n_heads=32,
        n_kv_heads=8,
        d_ff=14336,
        vocab_size=128256,
    ),
    "glm4-9b": ReferenceArchitecture(
        name="glm4-9b",
        d_model=4096,
        n_layers=40,
        n_heads=32,
        n_kv_heads=4,
        d_ff=13696,
        vocab_size=151552,
    ),
    "opt-6.7b": ReferenceArchitecture(
        name="opt-6.7b",
        d_model=4096,
        n_layers=32,
        n_heads=32,
        n_kv_heads=32,
        d_ff=16384,
        vocab_size=50272,
    ),
}


def get_model_config(name: str) -> ModelConfig:
    """Return the simulation :class:`ModelConfig` registered under ``name``."""
    if name not in _SIM_CONFIGS:
        raise KeyError(
            f"unknown model config {name!r}; available: {sorted(_SIM_CONFIGS)}"
        )
    return _SIM_CONFIGS[name]


def get_reference_architecture(name: str) -> ReferenceArchitecture:
    """Return the full-size reference architecture registered under ``name``."""
    if name not in _REFERENCE_ARCHS:
        raise KeyError(
            f"unknown reference architecture {name!r}; "
            f"available: {sorted(_REFERENCE_ARCHS)}"
        )
    return _REFERENCE_ARCHS[name]


def list_model_configs() -> list[str]:
    """Names of all registered simulation configs."""
    return sorted(_SIM_CONFIGS)


def list_reference_architectures() -> list[str]:
    """Names of all registered reference architectures."""
    return sorted(_REFERENCE_ARCHS)
