"""Word-level synthetic tokenizer.

The offline environment has no access to trained tokenizers, so the
reproduction uses a deterministic word-level tokenizer over a synthetic
vocabulary.  Workload generators emit text whose words are drawn from this
vocabulary; question answering metrics (F1, ROUGE-L) operate on the decoded
word sequences exactly as LongBench does.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SyntheticTokenizer"]

# Reserved token ids.
PAD_ID = 0
BOS_ID = 1
EOS_ID = 2
UNK_ID = 3
NUM_SPECIAL_TOKENS = 4

_SPECIAL_TOKENS = {
    PAD_ID: "<pad>",
    BOS_ID: "<bos>",
    EOS_ID: "<eos>",
    UNK_ID: "<unk>",
}


class SyntheticTokenizer:
    """Deterministic word-level tokenizer over a synthetic vocabulary.

    Vocabulary entry ``i`` (for non-special ids) is the word ``w{i}``; text
    is tokenized by whitespace splitting.  Unknown words map to ``<unk>``.
    """

    def __init__(self, vocab_size: int) -> None:
        if vocab_size <= NUM_SPECIAL_TOKENS:
            raise ValueError(
                f"vocab_size must exceed the {NUM_SPECIAL_TOKENS} special tokens"
            )
        self.vocab_size = vocab_size
        self._id_to_word = dict(_SPECIAL_TOKENS)
        for token_id in range(NUM_SPECIAL_TOKENS, vocab_size):
            self._id_to_word[token_id] = f"w{token_id}"
        self._word_to_id = {word: token_id for token_id, word in self._id_to_word.items()}

    @property
    def pad_id(self) -> int:
        """Token id of the padding token."""
        return PAD_ID

    @property
    def bos_id(self) -> int:
        """Token id of the beginning-of-sequence token."""
        return BOS_ID

    @property
    def eos_id(self) -> int:
        """Token id of the end-of-sequence token."""
        return EOS_ID

    @property
    def unk_id(self) -> int:
        """Token id of the unknown-word token."""
        return UNK_ID

    @property
    def num_special_tokens(self) -> int:
        """Number of reserved special token ids."""
        return NUM_SPECIAL_TOKENS

    def word_for_id(self, token_id: int) -> str:
        """The surface form of a token id."""
        if token_id < 0 or token_id >= self.vocab_size:
            raise ValueError(f"token id {token_id} out of range [0, {self.vocab_size})")
        return self._id_to_word[token_id]

    def id_for_word(self, word: str) -> int:
        """Token id of a word (``<unk>`` for out-of-vocabulary words)."""
        return self._word_to_id.get(word, UNK_ID)

    def encode(self, text: str, add_bos: bool = False) -> list[int]:
        """Tokenize whitespace-separated text into token ids."""
        ids = [self.id_for_word(word) for word in text.split()]
        if add_bos:
            ids = [BOS_ID] + ids
        return ids

    def decode(self, token_ids: list[int] | np.ndarray, skip_special: bool = True) -> str:
        """Convert token ids back to whitespace-joined text."""
        words = []
        for token_id in np.asarray(token_ids, dtype=np.int64).tolist():
            if skip_special and token_id < NUM_SPECIAL_TOKENS:
                continue
            words.append(self.word_for_id(int(token_id)))
        return " ".join(words)

    def random_word_ids(
        self, count: int, rng: np.random.Generator, exclude: set[int] | None = None
    ) -> np.ndarray:
        """Sample ``count`` non-special token ids uniformly at random."""
        exclude = exclude or set()
        candidates = np.array(
            [
                token_id
                for token_id in range(NUM_SPECIAL_TOKENS, self.vocab_size)
                if token_id not in exclude
            ],
            dtype=np.int64,
        )
        if candidates.size == 0:
            raise ValueError("no candidate token ids available")
        return rng.choice(candidates, size=count, replace=True)
