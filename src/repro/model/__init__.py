"""NumPy transformer inference substrate.

The substrate provides everything the paper's system needs from "the LLM":
a decoder-only transformer with grouped-query attention and RoPE (or
OPT-style learned positions), a KV cache with memory-tier accounting, and an
inference engine whose decoding loop delegates token selection to a
pluggable KV compression method.
"""

from .attention import (
    AttentionOutput,
    full_causal_attention,
    selected_attention,
    selected_attention_batch,
)
from .config import GenerationConfig, ModelConfig
from .generation import (
    EngineCore,
    GenerationResult,
    InferenceEngine,
    RecallRecord,
    SequenceState,
    StepAttentionRecord,
)
from .kv_cache import KVCacheStore, LayerKVCache
from .model_zoo import (
    ReferenceArchitecture,
    get_model_config,
    get_reference_architecture,
    list_model_configs,
    list_reference_architectures,
)
from .pointer import CopyHead
from .sampling import (
    DegenerateDistributionError,
    apply_temperature,
    greedy_sample,
    mix_distributions,
    temperature_sample,
)
from .tokenizer import SyntheticTokenizer
from .transformer import TransformerModel
from .weights import LayerWeights, ModelWeights, init_weights

__all__ = [
    "ModelConfig",
    "GenerationConfig",
    "TransformerModel",
    "InferenceEngine",
    "EngineCore",
    "SequenceState",
    "GenerationResult",
    "RecallRecord",
    "StepAttentionRecord",
    "KVCacheStore",
    "LayerKVCache",
    "CopyHead",
    "SyntheticTokenizer",
    "ModelWeights",
    "LayerWeights",
    "init_weights",
    "AttentionOutput",
    "full_causal_attention",
    "selected_attention",
    "selected_attention_batch",
    "greedy_sample",
    "temperature_sample",
    "apply_temperature",
    "mix_distributions",
    "DegenerateDistributionError",
    "ReferenceArchitecture",
    "get_model_config",
    "get_reference_architecture",
    "list_model_configs",
    "list_reference_architectures",
]
