"""Model configuration for the NumPy transformer inference substrate."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ModelConfig:
    """Architecture hyper-parameters of a decoder-only transformer.

    The substrate supports the three architecture families the paper
    evaluates on:

    * Llama-3.x style: RMSNorm, SwiGLU feed-forward, RoPE, grouped-query
      attention (``n_kv_heads < n_heads``).
    * GLM4 style: same family as Llama for the purposes of KV cache
      manipulation (RMSNorm + RoPE + GQA).
    * OPT style: LayerNorm, GELU feed-forward, learned absolute position
      embeddings (``use_rope=False``), multi-head attention
      (``n_kv_heads == n_heads``).

    Attributes
    ----------
    vocab_size:
        Number of entries in the token embedding table.
    d_model:
        Hidden size of the residual stream.
    n_layers:
        Number of transformer layers.
    n_heads:
        Number of query heads.
    n_kv_heads:
        Number of key/value heads (grouped-query attention when smaller than
        ``n_heads``).
    d_ff:
        Feed-forward inner dimension.
    max_position_embeddings:
        Maximum supported context length.
    use_rope:
        Whether rotary position embeddings are applied to queries and keys.
    rope_base:
        RoPE frequency base.
    norm_type:
        ``"rmsnorm"`` or ``"layernorm"``.
    activation:
        ``"swiglu"`` or ``"gelu"``.
    use_copy_head:
        Whether the model includes a pointer/copy head over the context
        (used by the retrieval-flavoured synthetic workloads; see
        DESIGN.md section 2).
    copy_gate:
        Mixing weight of the copy distribution against the vocabulary
        softmax when the copy head is enabled.
    copy_bigram_weight:
        Weight of the predecessor-token component of the copy head's bigram
        signature (0 makes the pointer purely unigram).
    copy_sharpness:
        Inverse temperature of the pointer attention.  Values around 20 make
        an exact bigram match dominate thousands of unrelated positions
        while leaving partial matches clearly weaker.
    num_embedding_clusters:
        Number of semantic clusters in the token embedding table.  Token
        ids are partitioned into contiguous blocks sharing a cluster centre,
        which gives key vectors the topical structure in semantic space that
        the paper's clustering exploits (paper Sec. III-A).
    embedding_cluster_weight:
        Weight of the shared cluster centre in each token embedding
        (0 removes the structure, 1 collapses tokens onto their centre).
    retrieval_strength:
        Scale of the shared (retrieval-aligned) component of the query/key
        projections.  Larger values concentrate attention on semantically
        matching tokens; the default produces realistic sparse attention.
    noise_strength:
        Scale of the per-head random component of the projections.
    seed:
        Seed used for deterministic weight initialisation.
    name:
        Human-readable identifier of the configuration.
    """

    vocab_size: int = 512
    d_model: int = 128
    n_layers: int = 4
    n_heads: int = 8
    n_kv_heads: int = 4
    d_ff: int = 256
    max_position_embeddings: int = 65536
    use_rope: bool = True
    rope_base: float = 10000.0
    norm_type: str = "rmsnorm"
    attention_scale: float | None = None
    activation: str = "swiglu"
    use_copy_head: bool = True
    copy_gate: float = 0.85
    copy_bigram_weight: float = 0.6
    copy_sharpness: float = 20.0
    num_embedding_clusters: int = 32
    embedding_cluster_weight: float = 0.6
    retrieval_strength: float = 4.0
    noise_strength: float = 0.4
    seed: int = 0
    name: str = "tiny"

    def __post_init__(self) -> None:
        if self.d_model % self.n_heads != 0:
            raise ValueError(
                f"d_model ({self.d_model}) must be divisible by n_heads "
                f"({self.n_heads})"
            )
        if self.n_heads % self.n_kv_heads != 0:
            raise ValueError(
                f"n_heads ({self.n_heads}) must be divisible by n_kv_heads "
                f"({self.n_kv_heads})"
            )
        if self.norm_type not in ("rmsnorm", "layernorm"):
            raise ValueError(f"unknown norm_type: {self.norm_type!r}")
        if self.activation not in ("swiglu", "gelu"):
            raise ValueError(f"unknown activation: {self.activation!r}")
        if not 0.0 <= self.copy_gate <= 1.0:
            raise ValueError("copy_gate must lie in [0, 1]")
        if self.num_embedding_clusters <= 0:
            raise ValueError("num_embedding_clusters must be positive")
        if not 0.0 <= self.embedding_cluster_weight < 1.0:
            raise ValueError("embedding_cluster_weight must lie in [0, 1)")

    @property
    def head_dim(self) -> int:
        """Per-head hidden dimension."""
        return self.d_model // self.n_heads

    @property
    def group_size(self) -> int:
        """Number of query heads sharing one key/value head."""
        return self.n_heads // self.n_kv_heads

    @property
    def softmax_scale(self) -> float:
        """Scale applied to attention logits (``1/sqrt(d_head)`` by default)."""
        if self.attention_scale is not None:
            return self.attention_scale
        return 1.0 / (self.head_dim ** 0.5)

    def kv_bytes_per_token(self, bytes_per_element: int = 2) -> int:
        """Size in bytes of the K and V vectors of one token across all layers.

        Used by the memory-tier accounting and the performance model.  The
        default of two bytes per element corresponds to fp16 storage, which
        is what the paper's implementation uses.
        """
        per_layer = 2 * self.n_kv_heads * self.head_dim * bytes_per_element
        return per_layer * self.n_layers


@dataclass(frozen=True)
class GenerationConfig:
    """Inference-time configuration shared by all KV compression methods.

    Attributes
    ----------
    budget:
        KV cache budget ``B`` (number of tokens selected per decoding step).
        ``None`` disables compression (full KV attention).
    num_full_layers:
        Number of leading layers that always use the full KV cache.  The
        paper follows Quest and keeps the first two layers uncompressed.
    num_sink_tokens:
        Number of initial tokens (attention sinks) that are always retained.
    max_new_tokens:
        Decoding length ``D``.
    greedy:
        Whether decoding is greedy (argmax) or samples from the output
        distribution.
    temperature:
        Sampling temperature when ``greedy`` is False.
    record_true_scores:
        When True, the engine additionally computes exact attention scores
        over the full context at every decoding step so that recall-rate
        metrics (paper Fig. 11) can be evaluated.
    record_attention_trace:
        When True, the engine stores per-step per-head selected indices and
        attention weights for offline analysis (paper Fig. 3).
    seed:
        Seed for stochastic sampling.
    """

    budget: int | None = None
    num_full_layers: int = 2
    num_sink_tokens: int = 16
    max_new_tokens: int = 32
    greedy: bool = True
    temperature: float = 1.0
    record_true_scores: bool = False
    record_attention_trace: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.budget is not None and self.budget <= 0:
            raise ValueError("budget must be positive when set")
        if self.max_new_tokens <= 0:
            raise ValueError("max_new_tokens must be positive")
        if self.num_full_layers < 0:
            raise ValueError("num_full_layers must be non-negative")
        if self.num_sink_tokens < 0:
            raise ValueError("num_sink_tokens must be non-negative")
