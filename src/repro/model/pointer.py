"""Pointer (copy) head over the context.

The reproduction cannot use trained checkpoints, so the synthetic model pairs
the transformer with a pointer-generator style copy head: the output
distribution mixes the vocabulary softmax with a *copy distribution* obtained
by attending from the current decoding step to the context and emitting the
token that follows the attended position (an induction-style pointer).

The pointer matches a **bigram signature** — a projection of the current
token's embedding plus a weighted projection of its predecessor's embedding —
against the same signature of every context position.  The predecessor
component disambiguates different occurrences of the same word by their local
context, which is what lets the synthetic QA workloads have a well-defined
correct answer under full attention.

This gives the model a genuine long-range retrieval capability — answering a
question requires attending to the evidence span planted in the context, and
predicting a repeated passage requires attending to its earlier occurrence.
Crucially, the copy head only sees the tokens *selected* by the active KV
compression method: if the evidence is not recalled, it cannot be copied,
which is exactly the failure mode the paper's accuracy experiments measure.
"""

from __future__ import annotations

import numpy as np

from .tensor_ops import softmax
from .weights import ModelWeights

__all__ = ["CopyHead"]


class CopyHead:
    """Induction-style pointer head over the token history."""

    def __init__(self, weights: ModelWeights) -> None:
        if (
            weights.copy_query_proj is None
            or weights.copy_key_proj is None
            or weights.copy_prev_proj is None
        ):
            raise ValueError("model weights do not include copy head projections")
        self.weights = weights
        self.vocab_size = weights.config.vocab_size
        self.d_model = weights.config.d_model
        self.bigram_weight = weights.config.copy_bigram_weight
        self.sharpness = weights.config.copy_sharpness
        self._token_ids: list[int] = []
        self._copy_keys: list[np.ndarray] = []

    def __len__(self) -> int:
        return len(self._token_ids)

    def _signature(self, token_id: int, previous_token_id: int | None) -> np.ndarray:
        """Bigram signature of a (previous, current) token pair."""
        embedding = self.weights.embedding[token_id]
        signature = embedding @ self.weights.copy_key_proj
        if previous_token_id is not None and self.bigram_weight != 0.0:
            prev_embedding = self.weights.embedding[previous_token_id]
            signature = signature + self.bigram_weight * (
                prev_embedding @ self.weights.copy_prev_proj
            )
        return signature

    def ingest(self, token_ids: np.ndarray) -> np.ndarray:
        """Append tokens to the copy-key history.

        Returns the bigram signatures of the newly ingested tokens, shape
        ``(t, d_model)``; the inference engine feeds them to the pointer
        head's KV selector state.
        """
        token_ids = np.asarray(token_ids, dtype=np.int64)
        new_keys = []
        for token_id in token_ids.tolist():
            previous = self._token_ids[-1] if self._token_ids else None
            signature = self._signature(int(token_id), previous)
            self._copy_keys.append(signature)
            self._token_ids.append(int(token_id))
            new_keys.append(signature)
        if not new_keys:
            return np.zeros((0, self.d_model))
        return np.stack(new_keys, axis=0)

    def current_signature(self) -> np.ndarray:
        """Bigram signature of the most recently ingested token."""
        if not self._copy_keys:
            raise RuntimeError("the copy head has not ingested any token yet")
        return self._copy_keys[-1]

    def copy_distribution(
        self,
        current_token_id: int,
        allowed_indices: np.ndarray | None = None,
        temperature: float = 1.0,
    ) -> np.ndarray | None:
        """Probability distribution over the vocabulary induced by copying.

        Parameters
        ----------
        current_token_id:
            Token id of the token being processed at this decoding step.  It
            must already be the last entry of the ingested history (the
            engine ingests before mixing distributions), so that its bigram
            signature uses the correct predecessor.
        allowed_indices:
            Absolute positions the copy head may attend to (the tokens
            selected by the KV compression method at the final layer).
            ``None`` means the full history is visible.
        temperature:
            Softmax temperature of the pointer attention.

        Returns
        -------
        numpy.ndarray or None
            ``(vocab_size,)`` probability vector, or ``None`` when there is
            no position the head can copy from (e.g. an empty history).
        """
        history = len(self._token_ids)
        if history == 0:
            return None
        if allowed_indices is None:
            allowed = np.arange(history, dtype=np.int64)
        else:
            allowed = np.asarray(allowed_indices, dtype=np.int64)
            allowed = allowed[(allowed >= 0) & (allowed < history)]
        # Positions whose successor lies outside the history cannot emit a
        # copy target; drop them.
        allowed = allowed[allowed + 1 < history]
        if allowed.size == 0:
            return None

        if self._token_ids and self._token_ids[-1] == current_token_id:
            query = self._copy_keys[-1]
        else:
            previous = self._token_ids[-1] if self._token_ids else None
            query = self._signature(current_token_id, previous)

        keys = np.stack([self._copy_keys[i] for i in allowed.tolist()], axis=0)
        scores = (keys @ query) * self.sharpness
        weights = softmax(scores / max(temperature, 1e-6))

        distribution = np.zeros(self.vocab_size)
        successor_tokens = np.asarray(
            [self._token_ids[i + 1] for i in allowed.tolist()], dtype=np.int64
        )
        np.add.at(distribution, successor_tokens, weights)
        return distribution

    def export_state(self) -> dict[str, object]:
        """Snapshot of the mutable pointer state (token and key history).

        The weights are shared and immutable, so the token-id list plus
        the per-token signature vectors are the head's *entire* mutable
        state; :meth:`restore_state` on a fresh head of the same model
        reproduces it exactly.  Used by :mod:`repro.seqstate` checkpoints.
        """
        return {
            "token_ids": list(self._token_ids),
            "copy_keys": [key.copy() for key in self._copy_keys],
        }

    def restore_state(self, state: dict[str, object]) -> None:
        """Adopt a snapshot produced by :meth:`export_state`."""
        token_ids = state["token_ids"]
        copy_keys = state["copy_keys"]
        assert isinstance(token_ids, list) and isinstance(copy_keys, list)
        self._token_ids = [int(token) for token in token_ids]
        self._copy_keys = [np.asarray(key, dtype=np.float64).copy() for key in copy_keys]

    def truncate(self, length: int) -> None:
        """Drop every ingested token beyond the first ``length``.

        Re-ingesting the same tokens afterwards reproduces the dropped
        signatures exactly (:meth:`ingest` is a pure function of the
        token and its predecessor), which is what lets speculative
        decoding roll back rejected drafts without snapshotting keys.
        """
        if not 0 <= length <= len(self._token_ids):
            raise IndexError(
                f"truncate length {length} outside [0, {len(self._token_ids)}]"
            )
        del self._token_ids[length:]
        del self._copy_keys[length:]

    def reset(self) -> None:
        """Clear the token history."""
        self._token_ids.clear()
        self._copy_keys.clear()
