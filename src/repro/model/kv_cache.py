"""Key/value cache storage for autoregressive decoding.

The store keeps per-layer, per-kv-head key and value tensors and grows them
as decoding appends tokens.  Residency (GPU vs. CPU tier) and the resulting
transfer traffic are tracked through an optional
:class:`repro.memory.OffloadManager`, mirroring the paper's system design in
which the full KV cache lives in CPU memory while only selected entries are
staged on the GPU (paper Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..memory import CapacityExceeded, OffloadManager, TierKind

__all__ = ["LayerKVCache", "KVCacheStore"]


class LayerKVCache:
    """Growable key/value storage of one transformer layer.

    Arrays are stored as ``(n_kv_heads, capacity, head_dim)`` with doubling
    growth; the logical length is tracked separately.
    """

    def __init__(
        self,
        layer_idx: int,
        n_kv_heads: int,
        head_dim: int,
        initial_capacity: int = 64,
    ) -> None:
        if n_kv_heads <= 0 or head_dim <= 0:
            raise ValueError("n_kv_heads and head_dim must be positive")
        self.layer_idx = layer_idx
        self.n_kv_heads = n_kv_heads
        self.head_dim = head_dim
        self._length = 0
        self._capacity = max(1, initial_capacity)
        # Keys and values share one (2, n_kv_heads, capacity, head_dim)
        # buffer so a selection's K and V can be gathered with a single
        # fancy-indexing call on the decode hot path.
        self._kv = np.zeros((2, n_kv_heads, self._capacity, head_dim))

    def __len__(self) -> int:
        return self._length

    @property
    def keys(self) -> np.ndarray:
        """View of the stored keys, shape ``(n_kv_heads, length, head_dim)``."""
        return self._kv[0, :, : self._length, :]

    @property
    def values(self) -> np.ndarray:
        """View of the stored values, shape ``(n_kv_heads, length, head_dim)``."""
        return self._kv[1, :, : self._length, :]

    def append(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Append ``t`` new tokens; both arrays are ``(n_kv_heads, t, head_dim)``."""
        keys = np.asarray(keys, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        if keys.shape != values.shape:
            raise ValueError(
                f"key shape {keys.shape} does not match value shape {values.shape}"
            )
        if keys.ndim != 3 or keys.shape[0] != self.n_kv_heads or keys.shape[2] != self.head_dim:
            raise ValueError(
                f"expected shape ({self.n_kv_heads}, t, {self.head_dim}), got {keys.shape}"
            )
        t = keys.shape[1]
        self._ensure_capacity(self._length + t)
        self._kv[0, :, self._length : self._length + t, :] = keys
        self._kv[1, :, self._length : self._length + t, :] = values
        self._length += t

    def gather(self, head_idx: int, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(keys, values)`` of one kv head at the given token indices."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self._length):
            raise IndexError(
                f"indices out of range [0, {self._length}) for layer {self.layer_idx}"
            )
        return (
            self._kv[0, head_idx, indices, :],
            self._kv[1, head_idx, indices, :],
        )

    def gather_many(
        self, indices_per_head: list[np.ndarray]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        """Gather every kv head's selection in one fancy-indexing call.

        Returns ``(keys, values, lengths)`` where keys/values are stacked
        ``(n_kv_heads, S, head_dim)`` tensors ready for
        :func:`repro.model.attention.selected_attention_batch`.  When the
        per-head selections have equal sizes ``lengths`` is ``None``;
        otherwise heads are right-padded to the longest selection with
        token 0 (a always-valid index — the padded entries are masked to
        zero weight downstream) and ``lengths`` gives each head's valid
        prefix.
        """
        if len(indices_per_head) != self.n_kv_heads:
            raise ValueError(
                f"expected {self.n_kv_heads} index arrays, got {len(indices_per_head)}"
            )
        lengths = np.asarray([idx.shape[0] for idx in indices_per_head], dtype=np.int64)
        max_len = int(lengths.max()) if lengths.size else 0
        if bool((lengths == max_len).all()):
            index_matrix = np.asarray(indices_per_head, dtype=np.int64)
            out_lengths = None
        else:
            index_matrix = np.zeros((self.n_kv_heads, max_len), dtype=np.int64)
            for head, idx in enumerate(indices_per_head):
                index_matrix[head, : lengths[head]] = idx
            out_lengths = lengths
        if index_matrix.size and (
            index_matrix.min() < 0 or index_matrix.max() >= self._length
        ):
            raise IndexError(
                f"indices out of range [0, {self._length}) for layer {self.layer_idx}"
            )
        rows = np.arange(self.n_kv_heads)[:, None]
        # One fancy-indexing call gathers both K and V from the fused buffer.
        gathered = self._kv[:, rows, index_matrix, :]
        return gathered[0], gathered[1], out_lengths

    def evict_span(self, start: int, end: int) -> bytes:
        """Serialize tokens ``[start, end)`` to bytes and zero them in place.

        Models writing a cold page out to a lower tier: the returned bytes
        are the page's payload (``(2, n_kv_heads, t, head_dim)`` float64,
        C order) and the live buffer genuinely loses the data — a read
        before :meth:`restore_span` would see zeros, which is how the
        spill round-trip tests prove recall is exact rather than cosmetic.
        """
        if not 0 <= start <= end <= self._length:
            raise IndexError(f"span [{start}, {end}) outside [0, {self._length})")
        span = np.ascontiguousarray(self._kv[:, :, start:end, :])
        self._kv[:, :, start:end, :] = 0.0
        return span.tobytes()

    def restore_span(self, start: int, end: int, payload: bytes) -> None:
        """Write a payload produced by :meth:`evict_span` back in place."""
        if not 0 <= start <= end <= self._length:
            raise IndexError(f"span [{start}, {end}) outside [0, {self._length})")
        shape = (2, self.n_kv_heads, end - start, self.head_dim)
        expected = int(np.prod(shape)) * 8
        if len(payload) != expected:
            raise ValueError(f"payload holds {len(payload)} bytes, span needs {expected}")
        self._kv[:, :, start:end, :] = np.frombuffer(payload, dtype=np.float64).reshape(shape)

    def truncate(self, new_length: int) -> None:
        """Discard every token at position ``new_length`` and beyond.

        The abandoned span is zeroed (not just logically hidden) so a
        stale read after a speculative-decoding rollback would see zeros
        rather than ghost data — the same honesty contract as
        :meth:`evict_span`.  Capacity is kept; the next append reuses it.
        """
        if not 0 <= new_length <= self._length:
            raise IndexError(
                f"truncate length {new_length} outside [0, {self._length}]"
            )
        if new_length == self._length:
            return
        self._kv[:, :, new_length : self._length, :] = 0.0
        self._length = new_length

    def _ensure_capacity(self, needed: int) -> None:
        if needed <= self._capacity:
            return
        new_capacity = self._capacity
        while new_capacity < needed:
            new_capacity *= 2
        new_kv = np.zeros((2, self.n_kv_heads, new_capacity, self.head_dim))
        new_kv[:, :, : self._length, :] = self._kv[:, :, : self._length, :]
        self._kv = new_kv
        self._capacity = new_capacity


@dataclass
class _ResidencyPolicy:
    """Where the bulk KV of a method resides and whether fetches are charged."""

    tier: TierKind

    @property
    def charges_fetch(self) -> bool:
        return self.tier is TierKind.CPU


class KVCacheStore:
    """KV caches for all layers of a model, with residency accounting."""

    def __init__(
        self,
        n_layers: int,
        n_kv_heads: int,
        head_dim: int,
        offload: OffloadManager | None = None,
        residency: TierKind = TierKind.GPU,
        bytes_per_element: int = 2,
        buffer_prefix: str = "",
    ) -> None:
        self.n_layers = n_layers
        self.n_kv_heads = n_kv_heads
        self.head_dim = head_dim
        self.offload = offload
        self.bytes_per_element = bytes_per_element
        # ``buffer_prefix`` namespaces the per-layer buffer registrations so
        # that many stores (one per in-flight serving request) can share one
        # OffloadManager without name collisions.
        self.buffer_prefix = buffer_prefix
        self._policy = _ResidencyPolicy(residency)
        self._released = False
        # Optional host->SSD pager (repro.capacity.spill).  When set, reads
        # recall any spilled pages first and appends that overflow the host
        # tier make room by spilling cold pages instead of failing.
        self.pager: object | None = None
        self.layers = [
            LayerKVCache(layer_idx, n_kv_heads, head_dim) for layer_idx in range(n_layers)
        ]
        if self.offload is not None:
            for layer_idx in range(n_layers):
                self.offload.register(self._buffer_name(layer_idx), 0, residency)

    @property
    def residency(self) -> TierKind:
        """Tier on which the bulk KV cache of this run resides."""
        return self._policy.tier

    def context_length(self) -> int:
        """Number of cached tokens (identical across layers by construction)."""
        return len(self.layers[0]) if self.layers else 0

    def token_nbytes(self) -> int:
        """Bytes of K plus V for one token of one layer (all kv heads)."""
        return 2 * self.n_kv_heads * self.head_dim * self.bytes_per_element

    def append(self, layer_idx: int, keys: np.ndarray, values: np.ndarray, step: int = -1) -> None:
        """Append new tokens to a layer's cache and account for their bytes."""
        layer = self.layers[layer_idx]
        layer.append(keys, values)
        if self.offload is not None:
            name = self._buffer_name(layer_idx)
            nbytes = len(layer) * self.token_nbytes()
            try:
                self.offload.resize(name, nbytes)
            except CapacityExceeded:
                if self.pager is None:
                    raise
                # Ask the pager to spill cold pages to the SSD tier, then
                # retry once; a second failure is the real capacity wall.
                self.pager.make_room(self, keys.shape[1] * self.token_nbytes(), step)
                self.offload.resize(name, nbytes)
            if self._policy.tier is TierKind.CPU:
                # Newly produced KV is generated on the GPU and written back to
                # host memory (paper Fig. 5, "Offload K & V").
                appended = keys.shape[1] * self.token_nbytes()
                self.offload.record_partial_offload(appended, step)

    def record_fetch(self, num_tokens: int, step: int, tag: str = "kv_fetch") -> int:
        """Charge an H2D transfer for ``num_tokens`` tokens of one layer.

        Returns the number of bytes charged (0 when the KV already resides on
        the GPU, as with full-KV or Quest-style methods).
        """
        if self.offload is None or not self._policy.charges_fetch:
            return 0
        nbytes = num_tokens * self.token_nbytes()
        if nbytes > 0:
            self.offload.record_partial_fetch(nbytes, step, tag)
        return nbytes

    def rollback(self, new_length: int) -> None:
        """Truncate every layer to ``new_length`` tokens and re-account.

        Used by speculative decoding to remove rejected draft tokens: the
        per-layer buffers shrink (zeroing the abandoned span) and the
        offload registrations resize down so the memory ledger sees the
        same residency it would have seen had the tokens never been
        appended.  ``resize`` records no transfers, so no phantom traffic
        is charged either way.
        """
        for layer_idx, layer in enumerate(self.layers):
            layer.truncate(new_length)
            if self.offload is not None:
                self.offload.resize(
                    self._buffer_name(layer_idx), new_length * self.token_nbytes()
                )

    def keys(self, layer_idx: int) -> np.ndarray:
        """Keys of a layer, shape ``(n_kv_heads, length, head_dim)``."""
        if self.pager is not None:
            self.pager.before_read(self, layer_idx, None)
        return self.layers[layer_idx].keys

    def values(self, layer_idx: int) -> np.ndarray:
        """Values of a layer, shape ``(n_kv_heads, length, head_dim)``."""
        if self.pager is not None:
            self.pager.before_read(self, layer_idx, None)
        return self.layers[layer_idx].values

    def gather(
        self, layer_idx: int, head_idx: int, indices: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Keys and values of selected tokens for one layer and kv head."""
        if self.pager is not None:
            self.pager.before_read(self, layer_idx, [np.asarray(indices, dtype=np.int64)])
        return self.layers[layer_idx].gather(head_idx, indices)

    def gather_many(
        self, layer_idx: int, indices_per_head: list[np.ndarray]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        """Stacked per-head selections of one layer (see :meth:`LayerKVCache.gather_many`)."""
        if self.pager is not None:
            self.pager.before_read(self, layer_idx, indices_per_head)
        return self.layers[layer_idx].gather_many(indices_per_head)

    def total_nbytes(self) -> int:
        """Total bytes of all cached K and V entries."""
        return sum(len(layer) * self.token_nbytes() for layer in self.layers)

    def release(self) -> None:
        """Deregister all layer buffers from the offload manager.

        Frees the tier usage accounted to this store (the NumPy arrays are
        garbage-collected with the store itself).  Safe to call twice; used
        by the serving engine when a request retires.
        """
        if self.offload is None or self._released:
            return
        for layer_idx in range(self.n_layers):
            self.offload.release(self._buffer_name(layer_idx))
        self._released = True

    def _buffer_name(self, layer_idx: int) -> str:
        return f"{self.buffer_prefix}kv_layer_{layer_idx}"
