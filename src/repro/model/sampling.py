"""Token sampling strategies for autoregressive decoding."""

from __future__ import annotations

import numpy as np

from .tensor_ops import softmax

__all__ = [
    "DegenerateDistributionError",
    "greedy_sample",
    "temperature_sample",
    "apply_temperature",
    "mix_distributions",
]


class DegenerateDistributionError(ValueError):
    """A probability vector with no mass where mass is required.

    Raised instead of returning an unnormalised vector: letting a
    zero-mass distribution escape produces a cryptic downstream
    ``rng.choice`` failure ("probabilities do not sum to 1") or — worse —
    a silently skewed greedy argmax over raw, meaningless values.
    """


def greedy_sample(probabilities: np.ndarray) -> int:
    """Deterministic argmax sampling with index tie-breaking."""
    probabilities = np.asarray(probabilities, dtype=np.float64)
    return int(np.argmax(probabilities))


def apply_temperature(probabilities: np.ndarray, temperature: float = 1.0) -> np.ndarray:
    """Re-temper and normalise a probability distribution.

    The deterministic half of :func:`temperature_sample`: the returned
    vector is exactly the distribution that function draws from, which
    is what speculative decoding's rejection sampler needs to accept
    drafts with the target model's own probabilities.
    """
    probabilities = np.asarray(probabilities, dtype=np.float64)
    if temperature <= 0:
        raise ValueError("temperature must be positive")
    if temperature != 1.0:
        logits = np.log(np.clip(probabilities, 1e-30, None)) / temperature
        probabilities = softmax(logits)
    total = probabilities.sum()
    if not total > 0:
        raise DegenerateDistributionError(
            f"distribution has non-positive total mass {total!r}"
        )
    return probabilities / total


def temperature_sample(
    probabilities: np.ndarray, rng: np.random.Generator, temperature: float = 1.0
) -> int:
    """Sample from a (re-tempered) probability distribution."""
    probabilities = apply_temperature(probabilities, temperature)
    return int(rng.choice(probabilities.shape[0], p=probabilities))


def mix_distributions(
    primary: np.ndarray, secondary: np.ndarray | None, gate: float
) -> np.ndarray:
    """Mix two probability distributions: ``gate * primary + (1-gate) * secondary``.

    When ``secondary`` is ``None`` the primary distribution is returned
    unchanged (re-normalised defensively).  A mix with no probability
    mass raises :class:`DegenerateDistributionError` — the callers all
    feed the result to a sampler, so an unnormalisable vector is a
    programming error worth a typed, immediate failure.
    """
    primary = np.asarray(primary, dtype=np.float64)
    if secondary is None:
        total = primary.sum()
        if not total > 0:
            raise DegenerateDistributionError(
                f"primary distribution has non-positive total mass {total!r}"
            )
        return primary / total
    secondary = np.asarray(secondary, dtype=np.float64)
    if primary.shape != secondary.shape:
        raise ValueError("distributions must have the same shape")
    if not 0.0 <= gate <= 1.0:
        raise ValueError("gate must lie in [0, 1]")
    mixed = gate * primary + (1.0 - gate) * secondary
    total = mixed.sum()
    if not total > 0:
        raise DegenerateDistributionError(
            f"mixed distribution has non-positive total mass {total!r} "
            f"(gate {gate})"
        )
    return mixed / total
