"""Token sampling strategies for autoregressive decoding."""

from __future__ import annotations

import numpy as np

from .tensor_ops import softmax

__all__ = ["greedy_sample", "temperature_sample", "mix_distributions"]


def greedy_sample(probabilities: np.ndarray) -> int:
    """Deterministic argmax sampling with index tie-breaking."""
    probabilities = np.asarray(probabilities, dtype=np.float64)
    return int(np.argmax(probabilities))


def temperature_sample(
    probabilities: np.ndarray, rng: np.random.Generator, temperature: float = 1.0
) -> int:
    """Sample from a (re-tempered) probability distribution."""
    probabilities = np.asarray(probabilities, dtype=np.float64)
    if temperature <= 0:
        raise ValueError("temperature must be positive")
    if temperature != 1.0:
        logits = np.log(np.clip(probabilities, 1e-30, None)) / temperature
        probabilities = softmax(logits)
    probabilities = probabilities / probabilities.sum()
    return int(rng.choice(probabilities.shape[0], p=probabilities))


def mix_distributions(
    primary: np.ndarray, secondary: np.ndarray | None, gate: float
) -> np.ndarray:
    """Mix two probability distributions: ``gate * primary + (1-gate) * secondary``.

    When ``secondary`` is ``None`` the primary distribution is returned
    unchanged (re-normalised defensively).
    """
    primary = np.asarray(primary, dtype=np.float64)
    if secondary is None:
        total = primary.sum()
        return primary / total if total > 0 else primary
    secondary = np.asarray(secondary, dtype=np.float64)
    if primary.shape != secondary.shape:
        raise ValueError("distributions must have the same shape")
    if not 0.0 <= gate <= 1.0:
        raise ValueError("gate must lie in [0, 1]")
    mixed = gate * primary + (1.0 - gate) * secondary
    total = mixed.sum()
    return mixed / total if total > 0 else mixed
