"""Traffic benchmark: latency-under-load for the ``repro traffic-bench`` CLI.

Builds a seeded open-loop workload (arrival process x request-shape mix,
or a replayed JSONL trace), simulates it over a router-fronted replica
fleet on the virtual perfmodel clock, and formats the resulting
:class:`~repro.traffic.report.TrafficReport` as a table.  With the
default clock the whole benchmark is arithmetic on seeded inputs, so a
given ``(config, seed)`` prints byte-identical numbers on any machine —
the property the reproducibility tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..api import EngineSpec
from ..model import get_model_config
from ..policies import PolicySpec
from ..serving.bench import serving_policy_spec
from .arrivals import build_arrivals
from .report import SLOSpec, TrafficReport
from .simulator import TrafficConfig, simulate
from .trace import load_trace
from .workload import RequestShape, TrafficRequest, generate_traffic

__all__ = [
    "TrafficBenchConfig",
    "build_bench_requests",
    "run_traffic_bench",
    "format_traffic_report",
]


@dataclass(frozen=True)
class TrafficBenchConfig:
    """Workload and fleet shape of the traffic benchmark.

    The defaults describe a bursty chat-style workload: Poisson arrivals
    at ``rate`` requests/s (on the perfmodel clock's paper-scale seconds)
    over two replicas behind join-shortest-queue routing, each request
    decoding under the serving-tuned ClusterKV policy.

    With several ``policies`` entries the workload mixes them across
    requests through an equal-weight seeded draw (one
    :class:`~repro.traffic.workload.RequestShape` per policy, chosen per
    request by the workload generator — proportions are equal in
    expectation, not exactly balanced); bare names resolve through the
    same serving-tuned configuration as ``serve-bench``
    (:func:`repro.serving.bench.serving_policy_spec`).
    ``trace`` replays a JSONL trace instead of generating arrivals
    (``rate``/``arrivals`` are then ignored; ``num_requests`` caps how
    many records are replayed).  ``prefill_chunk`` enables chunked
    prefill on every replica: at most that many prompt tokens are
    prefilled per engine step, interleaved with decoding (``None`` keeps
    monolithic prefill).  ``prefix_cache`` gives every replica a
    cross-request prefix cache of that many KV tokens
    (:mod:`repro.prefixcache`; ``None`` disables it) with radix blocks of
    ``prefix_block`` tokens; pair it with ``router="prefix_affine"`` so
    requests sharing a preamble land on the same replica-local cache.
    ``slo_class_mix`` splits the workload into service classes: that
    fraction of traffic (in expectation, seeded draw) is
    ``interactive``-class and the rest ``batch``-class (``None`` keeps
    everything interactive); pair it with ``preemption`` — which lets
    replicas checkpoint-preempt batch work for an interactive queue head
    (:mod:`repro.seqstate`) — and ``router="slo_aware"``.
    ``backend``/``workers`` select the execution backend replicas run on
    (:mod:`repro.execbackend`): ``workers`` set runs engines in that many
    worker processes, byte-identical numbers, lower wall-clock on
    multi-core hosts.
    ``speculate_k``/``drafter`` switch every replica to speculative
    decoding (:mod:`repro.specdec`): up to ``speculate_k`` drafted tokens
    verified per request per engine step; the report then carries
    per-request and aggregate acceptance accounting.
    """

    model: str = "serve-sim"
    policies: tuple[PolicySpec | str, ...] = ("clusterkv",)
    rate: float = 0.5
    arrivals: str = "poisson"
    burstiness: float = 4.0
    num_requests: int = 16
    num_replicas: int = 2
    router: str = "jsq"
    clock: str = "perfmodel"
    arch: str = "llama-3.1-8b"
    context_scale: int = 64
    prompt_len_min: int = 48
    prompt_len_max: int = 96
    max_new_tokens: int = 48
    budget: int = 48
    num_full_layers: int = 1
    num_sink_tokens: int = 8
    max_batch_size: int = 8
    prefill_chunk: int | None = None
    prefix_cache: int | None = None
    prefix_block: int = 32
    slo_class_mix: float | None = None
    preemption: bool = False
    slo: SLOSpec = field(default_factory=SLOSpec)
    seed: int = 0
    trace: str | None = None
    backend: str = "serial"
    workers: int | None = None
    speculate_k: int = 0
    drafter: str = "ngram"

    def __post_init__(self) -> None:
        if not self.policies:
            raise ValueError("policies must be non-empty")
        if self.num_requests <= 0:
            raise ValueError("num_requests must be positive")
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.slo_class_mix is not None and not 0.0 <= self.slo_class_mix <= 1.0:
            raise ValueError("slo_class_mix must lie in [0, 1]")
        resolved = tuple(
            spec
            if isinstance(spec, PolicySpec) and spec.kwargs
            else serving_policy_spec(
                spec.name if isinstance(spec, PolicySpec) else str(spec).strip(),
                self.num_sink_tokens,
            )
            for spec in self.policies
        )
        object.__setattr__(self, "policies", resolved)

    def engine_spec(self) -> EngineSpec:
        """Replica engine description of this benchmark."""
        return EngineSpec(
            model=self.model,
            policy=self.policies[0],
            budget=self.budget,
            max_new_tokens=self.max_new_tokens,
            num_full_layers=self.num_full_layers,
            num_sink_tokens=self.num_sink_tokens,
            max_batch_size=self.max_batch_size,
            max_prefills_per_step=self.max_batch_size,
            prefill_chunk_tokens=self.prefill_chunk,
            prefix_cache_tokens=self.prefix_cache,
            prefix_block_tokens=self.prefix_block,
            preemption=self.preemption,
            backend=self.backend,
            speculate_k=self.speculate_k,
            drafter=self.drafter,
        )

    def traffic_config(self) -> TrafficConfig:
        """Simulation configuration of this benchmark."""
        return TrafficConfig(
            engine=self.engine_spec(),
            num_replicas=self.num_replicas,
            router=self.router,
            clock=self.clock,
            arch=self.arch,
            context_scale=self.context_scale,
            slo=self.slo,
            workers=self.workers,
        )


def build_bench_requests(config: TrafficBenchConfig) -> list[TrafficRequest]:
    """The benchmark's workload: generated from seeds or replayed from disk.

    With ``trace`` set, at most ``num_requests`` records are replayed (so
    ``--requests`` bounds the run length against a large trace file);
    otherwise ``num_requests`` arrivals are drawn from the named process.
    """
    vocab_size = get_model_config(config.model).vocab_size
    if config.trace is not None:
        return load_trace(
            config.trace,
            vocab_size=vocab_size,
            seed=config.seed,
            limit=config.num_requests,
        )
    if config.arrivals == "trace":
        raise ValueError(
            "the 'trace' arrival process replays a file: pass --trace PATH "
            "instead of --arrivals trace"
        )
    if config.arrivals == "onoff":
        process = build_arrivals(
            "onoff", rate=config.rate, burstiness=config.burstiness
        )
    else:
        process = build_arrivals(config.arrivals, rate=config.rate)
    times = process.times(config.num_requests, seed=config.seed)
    # With a class mix, every policy contributes one shape per service
    # class, weighted by the interactive fraction (degenerate fractions
    # collapse to a single class — a RequestShape weight must be positive).
    mix = config.slo_class_mix
    if mix is None:
        class_weights = [("interactive", 1.0)]
    elif mix <= 0.0:
        class_weights = [("batch", 1.0)]
    elif mix >= 1.0:
        class_weights = [("interactive", 1.0)]
    else:
        class_weights = [("interactive", mix), ("batch", 1.0 - mix)]
    shapes = [
        RequestShape(
            prompt_len_range=(config.prompt_len_min, config.prompt_len_max),
            max_new_tokens=config.max_new_tokens,
            policy=spec,
            weight=weight,
            slo_class=slo_class,
        )
        for spec in config.policies
        for slo_class, weight in class_weights
    ]
    return generate_traffic(shapes, times, vocab_size=vocab_size, seed=config.seed)


def run_traffic_bench(config: TrafficBenchConfig | None = None) -> TrafficReport:
    """Simulate the benchmark workload and return its report."""
    config = config or TrafficBenchConfig()
    return simulate(build_bench_requests(config), config.traffic_config())


def format_traffic_report(report: TrafficReport) -> str:
    """Human-readable table of one traffic-simulation report."""
    slo_parts = []
    if report.slo.ttft_s is not None:
        slo_parts.append(f"TTFT<={report.slo.ttft_s:g}s")
    if report.slo.tpot_s is not None:
        slo_parts.append(f"TPOT<={report.slo.tpot_s:g}s")
    slo_label = " ".join(slo_parts) or "none"
    router = report.router.get("name", "?")
    clock = report.clock.get("name", "?")
    lines = [
        f"[traffic-bench] open-loop traffic over {report.num_replicas} replica(s), "
        f"router={router}, clock={clock}",
        f"requests: {report.num_requests}  tokens: {report.total_output_tokens}  "
        f"duration: {report.duration_s:.2f}s  steps: {report.engine_steps}  "
        f"occupancy: {report.mean_occupancy:.2f}",
        f"throughput: {report.throughput_tokens_per_s:.2f} tok/s  "
        f"goodput: {report.goodput_tokens_per_s:.2f} tok/s  "
        f"SLO attainment: {report.slo_attainment * 100.0:.1f}% ({slo_label})",
    ]
    if report.prefix_cache:
        cache = report.prefix_cache
        lines.append(
            f"prefix cache: hit rate {float(cache.get('hit_rate', 0.0)) * 100.0:.1f}% "
            f"({cache.get('hits', 0)}/{int(cache.get('hits', 0)) + int(cache.get('misses', 0))} lookups, "
            f"{cache.get('hit_tokens', 0)} tokens attached)  "
            f"TTFT hit/miss: {float(cache.get('ttft_hit_mean_s', 0.0)):.3f}s"
            f"/{float(cache.get('ttft_miss_mean_s', 0.0)):.3f}s"
        )
    speculation = report.speculation()
    if speculation["drafted_tokens"] > 0:
        lines.append(
            f"speculation: acceptance {speculation['acceptance_rate'] * 100.0:.1f}% "
            f"({int(speculation['accepted_tokens'])}/"
            f"{int(speculation['drafted_tokens'])} drafted)  "
            f"mean accepted run: {speculation['mean_accepted_run_length']:.2f} "
            f"over {int(speculation['rounds'])} rounds"
        )
    if report.num_rejected:
        reasons: dict[str, int] = {}
        for item in report.rejected:
            reasons[item.reason] = reasons.get(item.reason, 0) + 1
        spread = ", ".join(f"{name}: {count}" for name, count in sorted(reasons.items()))
        lines.append(
            f"rejected: {report.num_rejected}/{report.num_submitted} ({spread})"
        )
    lines.append(f"{'metric':12s} {'p50':>9s} {'p95':>9s} {'p99':>9s}")
    for metric, row in report.latency_summary().items():
        lines.append(
            f"{metric:12s} {row['p50']:9.3f} {row['p95']:9.3f} {row['p99']:9.3f}"
        )
    classes = report.class_summary()
    if len(classes) > 1 or report.num_preemptions:
        for name, row in sorted(classes.items()):
            ttft = row["ttft_s"]
            lines.append(
                f"class {name:11s} requests: {row['num_requests']:>4}  "
                f"TTFT p50/p99: {ttft['p50']:.3f}/{ttft['p99']:.3f}s  "
                f"goodput: {float(row['goodput_tokens_per_s']):.2f} tok/s"
            )
        if report.num_preemptions:
            lines.append(f"preemptions: {report.num_preemptions}")
    per_replica: dict[int, int] = {}
    for item in report.requests:
        per_replica[item.replica] = per_replica.get(item.replica, 0) + 1
    if per_replica:
        spread = "  ".join(
            f"replica {index}: {count}" for index, count in sorted(per_replica.items())
        )
        lines.append(f"requests per replica: {spread}")
    return "\n".join(lines)
