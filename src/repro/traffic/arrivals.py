"""Seeded open-loop arrival processes for the traffic simulator.

An arrival process turns ``(num_requests, seed)`` into a deterministic,
non-decreasing sequence of arrival timestamps in seconds.  Processes
self-register in a small name registry mirroring :mod:`repro.policies`, so
the CLI (``repro traffic-bench --arrivals poisson``), config files and
third-party processes all resolve through :func:`build_arrivals`:

* ``constant`` — evenly spaced arrivals at a fixed rate (the open-loop
  analogue of a paced load generator);
* ``poisson`` — exponential inter-arrival gaps at a mean rate, the
  classic memoryless model of independent users;
* ``onoff`` — a bursty on/off (interrupted Poisson) process: ON phases
  arrive at ``rate * burstiness``, OFF phases produce nothing, with the
  phase lengths chosen so the *mean* rate stays ``rate``.  This is the
  regime where tail latencies and queue waits separate routing policies;
* ``trace`` — replay explicit timestamps (see :mod:`repro.traffic.trace`
  for the JSONL on-disk form).

All randomness comes from ``numpy.random.default_rng(seed)``, so two
processes built with equal configuration emit bit-identical timestamps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

__all__ = [
    "ArrivalProcess",
    "ConstantArrivals",
    "PoissonArrivals",
    "OnOffArrivals",
    "TraceArrivals",
    "register_arrivals",
    "build_arrivals",
    "arrival_names",
]


class ArrivalProcess:
    """Base class: a deterministic generator of arrival timestamps."""

    name = "abstract"

    def times(self, num_requests: int, seed: int = 0) -> np.ndarray:
        """Arrival timestamps in seconds, shape ``(num_requests,)``, sorted."""
        raise NotImplementedError

    def describe(self) -> dict[str, object]:
        """Identifying configuration of this process (for reports)."""
        return {"name": self.name}


_ARRIVALS: dict[str, type] = {}


def register_arrivals(name: str) -> Callable[[type], type]:
    """Class decorator registering an :class:`ArrivalProcess` under ``name``."""

    def decorator(cls: type) -> type:
        existing = _ARRIVALS.get(name)
        if existing is not None and existing is not cls:
            raise ValueError(f"arrival process name {name!r} is already registered")
        _ARRIVALS[name] = cls
        cls.name = name
        return cls

    return decorator


def arrival_names() -> tuple[str, ...]:
    """Sorted names of all registered arrival processes."""
    return tuple(sorted(_ARRIVALS))


def build_arrivals(name: str, **kwargs: object) -> ArrivalProcess:
    """Instantiate a registered arrival process from its name and kwargs."""
    cls = _ARRIVALS.get(name)
    if cls is None:
        known = ", ".join(arrival_names()) or "<none registered>"
        raise ValueError(f"unknown arrival process {name!r}; registered: {known}")
    return cls(**kwargs)


@register_arrivals("constant")
@dataclass(frozen=True)
class ConstantArrivals(ArrivalProcess):
    """Evenly spaced arrivals: request ``i`` arrives at ``i / rate``."""

    rate: float = 1.0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("rate must be positive")

    def times(self, num_requests: int, seed: int = 0) -> np.ndarray:
        """Evenly spaced timestamps (the seed is unused: no randomness)."""
        return np.arange(num_requests, dtype=np.float64) / self.rate

    def describe(self) -> dict[str, object]:
        """Name and rate of this process."""
        return {"name": self.name, "rate": self.rate}


@register_arrivals("poisson")
@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Poisson process: i.i.d. exponential gaps with mean ``1 / rate``."""

    rate: float = 1.0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("rate must be positive")

    def times(self, num_requests: int, seed: int = 0) -> np.ndarray:
        """Cumulative sums of seeded exponential inter-arrival gaps."""
        rng = np.random.default_rng(seed)
        gaps = rng.exponential(1.0 / self.rate, size=num_requests)
        return np.cumsum(gaps)

    def describe(self) -> dict[str, object]:
        """Name and rate of this process."""
        return {"name": self.name, "rate": self.rate}


@register_arrivals("onoff")
@dataclass(frozen=True)
class OnOffArrivals(ArrivalProcess):
    """Bursty on/off arrivals with mean rate ``rate``.

    The process alternates exponentially-long ON and OFF phases.  During
    ON phases requests arrive as a Poisson stream at ``rate * burstiness``;
    OFF phases are silent.  The duty cycle is ``1 / burstiness``, so the
    long-run mean rate equals ``rate`` while the instantaneous rate during
    a burst is ``burstiness`` times higher — the bursty-load regime where
    queue waits and routing policies matter.

    Attributes
    ----------
    rate:
        Long-run mean arrival rate (requests per second).
    burstiness:
        Peak-to-mean rate ratio (>= 1; 1 degenerates to Poisson).
    mean_burst:
        Mean number of requests per ON phase.
    """

    rate: float = 1.0
    burstiness: float = 4.0
    mean_burst: float = 8.0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.burstiness < 1.0:
            raise ValueError("burstiness must be at least 1")
        if self.mean_burst <= 0:
            raise ValueError("mean_burst must be positive")

    def times(self, num_requests: int, seed: int = 0) -> np.ndarray:
        """Seeded bursty timestamps: Poisson ON phases, silent OFF phases."""
        rng = np.random.default_rng(seed)
        peak_rate = self.rate * self.burstiness
        # ON phase: mean_burst arrivals at peak_rate -> mean length
        # mean_burst / peak_rate.  OFF phase balances the duty cycle to
        # 1 / burstiness: off = on * (burstiness - 1).
        mean_on = self.mean_burst / peak_rate
        mean_off = mean_on * (self.burstiness - 1.0)
        times: list[float] = []
        now = 0.0
        while len(times) < num_requests:
            on_end = now + rng.exponential(mean_on)
            while len(times) < num_requests:
                now += rng.exponential(1.0 / peak_rate)
                if now > on_end:
                    now = on_end
                    break
                times.append(now)
            if mean_off > 0:
                now += rng.exponential(mean_off)
        return np.asarray(times[:num_requests], dtype=np.float64)

    def describe(self) -> dict[str, object]:
        """Name, mean rate and burst shape of this process."""
        return {
            "name": self.name,
            "rate": self.rate,
            "burstiness": self.burstiness,
            "mean_burst": self.mean_burst,
        }


@register_arrivals("trace")
@dataclass(frozen=True)
class TraceArrivals(ArrivalProcess):
    """Replay of explicit arrival timestamps (e.g. loaded from a trace)."""

    timestamps: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(float(t) for t in self.timestamps)
        if any(b < a for a, b in zip(ordered, ordered[1:])):
            raise ValueError("trace timestamps must be non-decreasing")
        if any(t < 0 for t in ordered):
            raise ValueError("trace timestamps must be non-negative")
        object.__setattr__(self, "timestamps", ordered)

    @classmethod
    def from_sequence(cls, timestamps: Sequence[float]) -> "TraceArrivals":
        """Build from any sequence of non-decreasing timestamps."""
        return cls(timestamps=tuple(float(t) for t in timestamps))

    def times(self, num_requests: int, seed: int = 0) -> np.ndarray:
        """The first ``num_requests`` recorded timestamps, verbatim."""
        if num_requests > len(self.timestamps):
            raise ValueError(
                f"trace holds {len(self.timestamps)} arrivals, "
                f"{num_requests} requested"
            )
        return np.asarray(self.timestamps[:num_requests], dtype=np.float64)

    def describe(self) -> dict[str, object]:
        """Name and length of the replayed trace."""
        return {"name": self.name, "num_timestamps": len(self.timestamps)}
