"""Step clocks: assigning a duration to every engine step.

The simulator charges time per engine step through a pluggable clock:

* :class:`PerfModelClock` — the default.  Prices each step's trace on the
  analytical :class:`~repro.perfmodel.StepCostModel` (paper-scale
  architecture and hardware, simulated contexts scaled up by
  ``context_scale``).  Purely arithmetic, so simulation results are
  machine-independent and bit-reproducible.
* :class:`WallClock` — charges the measured wall time of each step
  (``StepTrace.wall_seconds``).  Useful for profiling the NumPy substrate
  itself; results depend on the host and are not reproducible.
"""

from __future__ import annotations

from ..perfmodel import ADA_6000, HardwareConfig, MethodLatencyParams, StepCostModel
from ..serving import StepTrace

__all__ = ["StepClock", "PerfModelClock", "WallClock", "build_clock"]


class StepClock:
    """Base class: maps one :class:`~repro.serving.StepTrace` to seconds."""

    name = "abstract"

    def step_seconds(self, trace: StepTrace) -> float:
        """Duration of the traced engine step, in simulation seconds."""
        raise NotImplementedError

    def warmup_seconds(self) -> float:
        """Provisioning lag of one new serving replica (0 by default).

        The elastic cluster layer charges this between a scale-up decision
        and the new replica accepting traffic.  Clocks that cannot price
        cold starts (wall time) report 0.
        """
        return 0.0

    def migration_seconds(self, num_tokens: int) -> float:
        """Cost of moving one in-flight request's KV between replicas.

        Charged by the cluster layer when a checkpointed request restores
        on a different replica (live migration).  Clocks that cannot price
        transfers (wall time) report 0 — migration then costs nothing but
        still preserves the decoded work.
        """
        return 0.0

    def describe(self) -> dict[str, object]:
        """Identifying configuration of this clock (for reports)."""
        return {"name": self.name}


class PerfModelClock(StepClock):
    """Virtual clock charging roofline-model costs at paper scale."""

    name = "perfmodel"

    def __init__(
        self,
        arch: str = "llama-3.1-8b",
        hardware: HardwareConfig = ADA_6000,
        params: MethodLatencyParams | None = None,
        context_scale: int = 64,
    ) -> None:
        self.cost_model = StepCostModel(
            arch=arch,
            hardware=hardware,
            params=params,
            context_scale=context_scale,
        )

    def step_seconds(self, trace: StepTrace) -> float:
        """Roofline-model price of the traced step (prefills + decode batch).

        Steps run in capacity mode additionally carry the KV tokens the
        host->SSD pager moved; those are priced at NVMe bandwidth on top
        of the compute and PCIe terms, which is what makes a serving point
        that survives only by spilling *pay* for its spills in latency.
        """
        seconds = self.cost_model.step_seconds(
            trace.prefills, trace.decodes, getattr(trace, "attaches", ())
        )
        seconds += self.cost_model.spill_seconds(getattr(trace, "spilled_tokens", 0))
        seconds += self.cost_model.recall_seconds(getattr(trace, "recalled_tokens", 0))
        return seconds

    def warmup_seconds(self) -> float:
        """Roofline-model price of booting one replica (weights + warm pass)."""
        return self.cost_model.replica_warmup_seconds()

    def migration_seconds(self, num_tokens: int) -> float:
        """Roofline-model price of a host-to-host KV transfer (migration)."""
        return self.cost_model.migration_seconds(num_tokens)

    def describe(self) -> dict[str, object]:
        """Clock name plus the priced architecture/hardware/scale."""
        return {"name": self.name, **self.cost_model.describe()}


class WallClock(StepClock):
    """Fallback clock charging measured wall time (not reproducible)."""

    name = "wall"

    def step_seconds(self, trace: StepTrace) -> float:
        """Measured wall time of the traced step."""
        return trace.wall_seconds

    def describe(self) -> dict[str, object]:
        """Clock name (wall time carries no configuration)."""
        return {"name": self.name}


def build_clock(
    name: str, arch: str = "llama-3.1-8b", context_scale: int = 64
) -> StepClock:
    """Build a step clock from its CLI name (``perfmodel`` or ``wall``)."""
    if name == "perfmodel":
        return PerfModelClock(arch=arch, context_scale=context_scale)
    if name == "wall":
        return WallClock()
    raise ValueError(f"unknown clock {name!r}; available: perfmodel, wall")
