"""JSONL traffic traces: record and replay open-loop workloads.

A trace is one JSON object per line, in arrival order::

    {"arrival_time_s": 0.41, "prompt_len": 72, "max_new_tokens": 32,
     "policy": {"name": "clusterkv", "tokens_per_cluster": 32}}

``policy`` is the flat :meth:`repro.policies.PolicySpec.to_dict` form (or
``null`` for the engine default).  A record may carry explicit
``"prompt_ids"`` for exact replay; otherwise :func:`load_trace`
regenerates the prompt contents deterministically from its ``seed``
argument, so a trace stores shapes and timing — the load pattern — in a
few bytes per request while replays remain bit-reproducible.

:func:`save_trace` writes the requests produced by
:func:`~repro.traffic.workload.generate_traffic` (or completed runs), and
round-trips with :func:`load_trace`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

import numpy as np

from ..policies import PolicySpec
from .workload import TrafficRequest

__all__ = ["save_trace", "load_trace"]


def save_trace(
    path: str | Path,
    requests: Iterable[TrafficRequest],
    include_prompt_ids: bool = False,
) -> int:
    """Write requests as a JSONL trace; returns the number of records.

    With ``include_prompt_ids`` the exact token ids are embedded (larger
    files, exact replay without a seed); otherwise only the prompt length
    is stored and replay regenerates contents from ``load_trace``'s seed.
    """
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for request in requests:
            record: dict[str, object] = {
                "arrival_time_s": request.arrival_time_s,
                "prompt_len": request.prompt_length(),
                "max_new_tokens": request.max_new_tokens,
                "policy": None if request.policy is None else request.policy.to_dict(),
            }
            if include_prompt_ids:
                record["prompt_ids"] = [int(t) for t in request.prompt_ids]
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            count += 1
    return count


def load_trace(
    path: str | Path,
    vocab_size: int,
    seed: int = 0,
    id_prefix: str = "t",
    limit: int | None = None,
) -> list[TrafficRequest]:
    """Load a JSONL trace into replayable :class:`TrafficRequest` objects.

    Records without embedded ``prompt_ids`` get deterministic contents
    drawn from ``numpy.random.default_rng(seed)`` at their recorded
    length, so two loads with equal arguments replay identical workloads.
    ``limit`` caps the number of records read (a prefix of the trace);
    ``None`` loads everything.

    Raises
    ------
    ValueError
        On malformed lines, negative or decreasing arrival times (traces
        must be in arrival order), or records with neither ``prompt_len``
        nor ``prompt_ids``.
    """
    path = Path(path)
    if limit is not None and limit <= 0:
        raise ValueError("limit must be positive when set")
    rng = np.random.default_rng(seed)
    requests: list[TrafficRequest] = []
    previous_arrival = 0.0
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle):
            if limit is not None and len(requests) >= limit:
                break
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{line_number + 1}: malformed JSON: {error}"
                ) from None
            if not isinstance(record, dict):
                raise ValueError(
                    f"{path}:{line_number + 1}: trace records must be objects"
                )
            arrival = float(record.get("arrival_time_s", 0.0))
            if arrival < previous_arrival:
                raise ValueError(
                    f"{path}:{line_number + 1}: arrival times must be "
                    "non-decreasing (traces are in arrival order)"
                )
            previous_arrival = arrival
            if "prompt_ids" in record:
                prompt_ids = np.asarray(record["prompt_ids"], dtype=np.int64)
            elif "prompt_len" in record:
                length = int(record["prompt_len"])
                if length <= 0:
                    raise ValueError(
                        f"{path}:{line_number + 1}: prompt_len must be positive"
                    )
                prompt_ids = rng.integers(4, vocab_size, size=length).astype(np.int64)
            else:
                raise ValueError(
                    f"{path}:{line_number + 1}: record needs prompt_len or prompt_ids"
                )
            policy = record.get("policy")
            requests.append(
                TrafficRequest(
                    request_id=f"{id_prefix}{len(requests)}",
                    arrival_time_s=arrival,
                    prompt_ids=prompt_ids,
                    max_new_tokens=int(record.get("max_new_tokens", 32)),
                    policy=None if policy is None else PolicySpec.from_dict(policy),
                )
            )
    return requests
