"""SLO metrics of one traffic-simulation run.

Per request the simulator records the four latency quantities serving
systems are judged on — queue wait, TTFT (time to first token), TPOT
(time per output token after the first) and end-to-end latency — all
measured against the request's arrival instant on the simulation clock.
:class:`TrafficReport` aggregates them into p50/p95/p99 summaries and
deadline *goodput*: the token throughput contributed by requests that met
their TTFT/TPOT deadlines (:class:`SLOSpec`), which is the quantity that
separates a system that is fast on average from one that is fast at the
tail.

Reports are plain data: :meth:`TrafficReport.to_dict` /
:meth:`~TrafficReport.to_json` emit a deterministic JSON document (no
wall-clock fields when simulated on the virtual perfmodel clock), so two
runs with equal seeds produce byte-identical reports — the
reproducibility contract the tests assert.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

__all__ = [
    "SLOSpec",
    "RequestMetrics",
    "RejectedRequest",
    "TrafficReport",
    "percentile",
]

PERCENTILES = (50.0, 95.0, 99.0)


def percentile(values: list[float], q: float) -> float:
    """Deterministic linear-interpolation percentile (NaN for no samples).

    An empty sample has no percentile: returning 0.0 here (the historical
    behaviour) made an all-rejected class look like it had *perfect*
    latency.  NaN propagates honestly through in-memory aggregates and
    serialises as ``null`` in report JSON (:meth:`TrafficReport.to_dict`
    sanitises non-finite floats), so dashboards render a gap instead of a
    zero.
    """
    if not values:
        return float("nan")
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


def _jsonable(value: object) -> object:
    """Deep-copy a report payload with non-finite floats replaced by None.

    ``json.dumps`` would emit the non-standard literals ``NaN`` /
    ``Infinity`` for them, breaking the byte-stable-JSON contract (and
    strict parsers); ``null`` is the faithful JSON spelling of "no
    sample".
    """
    if isinstance(value, float) and not np.isfinite(value):
        return None
    if isinstance(value, dict):
        return {key: _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    return value


@dataclass(frozen=True)
class SLOSpec:
    """Latency deadlines a request must meet to count toward goodput.

    ``None`` disables a deadline.  The defaults (2.5 s TTFT, 150 ms TPOT)
    are interactive targets for long-context traffic at the perfmodel's
    paper scale, where the exact prefill of a ~4k-token prompt alone
    costs about a second — an unloaded request meets them comfortably, a
    queued or compression-free one does not.
    """

    ttft_s: float | None = 2.5
    tpot_s: float | None = 0.15

    def __post_init__(self) -> None:
        if self.ttft_s is not None and self.ttft_s <= 0:
            raise ValueError("ttft_s must be positive when set")
        if self.tpot_s is not None and self.tpot_s <= 0:
            raise ValueError("tpot_s must be positive when set")

    def is_met(self, ttft_s: float, tpot_s: float) -> bool:
        """Whether a request with these latencies meets the deadlines."""
        if self.ttft_s is not None and ttft_s > self.ttft_s:
            return False
        if self.tpot_s is not None and tpot_s > self.tpot_s:
            return False
        return True

    def to_dict(self) -> dict[str, object]:
        """Plain-dict form (JSON-ready)."""
        return {"ttft_s": self.ttft_s, "tpot_s": self.tpot_s}

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "SLOSpec":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            ttft_s=payload.get("ttft_s"),  # type: ignore[arg-type]
            tpot_s=payload.get("tpot_s"),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class RequestMetrics:
    """Latency record of one served request on the simulation clock.

    Attributes
    ----------
    request_id / replica / policy:
        Identity: which request, served where, under which compression
        policy.
    arrival_time_s:
        Arrival instant.
    queue_wait_s:
        Arrival to admission (start of the engine step that prefilled the
        request).
    ttft_s:
        Arrival to first token (end of the prefilling step).
    tpot_s:
        Mean seconds per output token after the first (0 for one-token
        requests).
    e2e_s:
        Arrival to retirement.
    prompt_tokens / output_tokens:
        Sizes of the request.
    slo_met:
        Whether the run's :class:`SLOSpec` deadlines were met.
    retries:
        How many times the request was re-dispatched after losing its
        replica to a failure (0 for a run without failure injection).
        All latencies of a retried request are measured against its
        *original* arrival instant, so the failure cost shows up in TTFT
        and end-to-end latency rather than being hidden.
    cached_prefix_tokens:
        Prompt tokens attached from the replica's cross-request prefix
        cache instead of being prefilled (0 on a miss or with the cache
        disabled) — what splits the report's with-cache vs. without-cache
        TTFT aggregates.
    slo_class:
        Service class of the request (``"interactive"`` or ``"batch"``),
        splitting the report's per-class latency aggregates.
    migrations:
        How many times the request's live state was checkpoint-migrated
        to another replica (drain migration; 0 without
        ``migrate_on_drain``).  A migrated request keeps its decoded
        tokens, so — unlike a retry — its latencies include only the
        transfer cost, not a re-prefill.
    recoveries:
        How many times the request resumed from a periodic checkpoint
        after its replica failed (0 without ``checkpoint_interval_s``).
        Only the tokens decoded after the last checkpoint are lost.
    spec_rounds / spec_drafted_tokens / spec_accepted_tokens /
    spec_rejected_tokens:
        Speculative-decoding counters of the request (all 0 when the run
        decoded without speculation).  ``drafted == accepted + rejected``
        holds for every request.
    """

    request_id: str
    replica: int
    policy: str
    arrival_time_s: float
    queue_wait_s: float
    ttft_s: float
    tpot_s: float
    e2e_s: float
    prompt_tokens: int
    output_tokens: int
    slo_met: bool
    retries: int = 0
    cached_prefix_tokens: int = 0
    slo_class: str = "interactive"
    migrations: int = 0
    recoveries: int = 0
    spec_rounds: int = 0
    spec_drafted_tokens: int = 0
    spec_accepted_tokens: int = 0
    spec_rejected_tokens: int = 0

    def to_dict(self) -> dict[str, object]:
        """Plain-dict form (JSON-ready), keys in declaration order."""
        return {
            "request_id": self.request_id,
            "replica": self.replica,
            "policy": self.policy,
            "arrival_time_s": self.arrival_time_s,
            "queue_wait_s": self.queue_wait_s,
            "ttft_s": self.ttft_s,
            "tpot_s": self.tpot_s,
            "e2e_s": self.e2e_s,
            "prompt_tokens": self.prompt_tokens,
            "output_tokens": self.output_tokens,
            "slo_met": self.slo_met,
            "retries": self.retries,
            "cached_prefix_tokens": self.cached_prefix_tokens,
            "slo_class": self.slo_class,
            "migrations": self.migrations,
            "recoveries": self.recoveries,
            "spec_rounds": self.spec_rounds,
            "spec_drafted_tokens": self.spec_drafted_tokens,
            "spec_accepted_tokens": self.spec_accepted_tokens,
            "spec_rejected_tokens": self.spec_rejected_tokens,
        }


@dataclass(frozen=True)
class RejectedRequest:
    """One request turned away by admission control (or retry exhaustion).

    Rejections are first-class outcomes, not silent drops: every rejected
    request appears in the report with the instant and reason, so request
    conservation (``submitted == completed + rejected`` once a run drains)
    is checkable from the report alone.

    Attributes
    ----------
    request_id / arrival_time_s:
        Identity and arrival instant of the rejected request.
    prompt_tokens / max_new_tokens:
        Size the admission decision was made against.
    reason:
        Machine-readable reason (``"kv_headroom"``, ``"queue_deadline"``,
        ``"retries_exhausted"``, ...).
    policy:
        Name of the request's compression policy (empty string for the
        engine default).
    detail:
        Numbers behind the decision (e.g. needed vs. available headroom
        tokens), for the admission invariant tests.
    """

    request_id: str
    arrival_time_s: float
    prompt_tokens: int
    max_new_tokens: int
    reason: str
    policy: str = ""
    detail: Mapping[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict[str, object]:
        """Plain-dict form (JSON-ready), keys in declaration order."""
        return {
            "request_id": self.request_id,
            "arrival_time_s": self.arrival_time_s,
            "prompt_tokens": self.prompt_tokens,
            "max_new_tokens": self.max_new_tokens,
            "reason": self.reason,
            "policy": self.policy,
            "detail": dict(self.detail),
        }


@dataclass
class TrafficReport:
    """Aggregate outcome of one traffic-simulation run.

    Attributes
    ----------
    requests:
        Per-request latency records in retirement order.
    slo:
        The deadlines goodput was evaluated under.
    num_replicas / router / clock:
        Run configuration (router and clock as ``describe()`` dicts).
        For an elastic cluster run ``num_replicas`` is the *peak*
        provisioned fleet size; the ``scaling`` timeline has the detail.
    duration_s:
        Last retirement instant on the simulation clock (arrivals start
        near 0, so this is the run's makespan).
    engine_steps:
        Engine steps summed over replicas.
    mean_occupancy:
        Mean decode-batch size over all replica steps.
    rejected:
        Requests turned away by admission control (empty for plain
        traffic runs, which admit everything).
    num_retries:
        Total failure-triggered re-dispatches across all requests.
    lost_tokens:
        Decoded tokens thrown away by replica failures (wasted work).
        With periodic checkpointing only the tokens decoded *after* the
        last checkpoint count — the lost-work accounting the recovery
        tests pin down.
    num_migrations:
        Total drain-triggered live migrations across all requests
        (checkpointed on the draining replica, restored elsewhere with
        all decoded work preserved).
    num_recoveries:
        Total checkpoint restores after failures (victims that resumed
        from a periodic checkpoint instead of re-prefilling from
        scratch).
    num_preemptions:
        Total checkpoint preemptions across all replicas (batch-class
        requests parked to unblock an interactive queue head).
    autoscaler / admission:
        ``describe()`` dicts of the cluster control plane (empty for
        plain traffic runs).
    failures:
        One record per fired failure event: instant, victim replica and
        the in-flight request ids that were lost and re-dispatched.
    scaling:
        Timeline of fleet changes: one record per boot / ready / drain /
        remove / failure transition with the provisioned count after it.
    prefix_cache:
        Aggregate prefix-cache accounting summed over replicas (hits,
        misses, hit rate, hit/evicted tokens) plus the TTFT split between
        requests that attached a cached prefix and those that did not;
        empty for runs with the cache disabled.
    wall:
        Host wall-time breakdown of the run (``run_wall_s``, per-replica
        ``step_wall_s``/``idle_wall_s``, and the execution backend's
        ``describe()``).  Machine-dependent observability only —
        deliberately **excluded** from :meth:`to_dict`/:meth:`to_json`,
        which stay byte-reproducible across backends and hosts.
    """

    requests: list[RequestMetrics] = field(default_factory=list)
    slo: SLOSpec = field(default_factory=SLOSpec)
    num_replicas: int = 1
    router: dict[str, object] = field(default_factory=dict)
    clock: dict[str, object] = field(default_factory=dict)
    duration_s: float = 0.0
    engine_steps: int = 0
    mean_occupancy: float = 0.0
    rejected: list[RejectedRequest] = field(default_factory=list)
    num_retries: int = 0
    lost_tokens: int = 0
    num_migrations: int = 0
    num_recoveries: int = 0
    num_preemptions: int = 0
    autoscaler: dict[str, object] = field(default_factory=dict)
    admission: dict[str, object] = field(default_factory=dict)
    failures: list[dict[str, object]] = field(default_factory=list)
    scaling: list[dict[str, object]] = field(default_factory=list)
    prefix_cache: dict[str, object] = field(default_factory=dict)
    wall: dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------
    @property
    def num_requests(self) -> int:
        """Number of requests served."""
        return len(self.requests)

    @property
    def num_rejected(self) -> int:
        """Number of requests turned away by admission control."""
        return len(self.rejected)

    @property
    def num_submitted(self) -> int:
        """All requests that entered the system (served plus rejected).

        Once a run drains, request conservation holds:
        ``num_submitted == num_requests + num_rejected`` with no request
        left in retry limbo — the invariant the scenario-matrix tests
        assert cell by cell.
        """
        return len(self.requests) + len(self.rejected)

    @property
    def total_output_tokens(self) -> int:
        """Generated tokens summed over all requests."""
        return sum(m.output_tokens for m in self.requests)

    @property
    def throughput_tokens_per_s(self) -> float:
        """Generated-token throughput over the run's makespan."""
        if self.duration_s <= 0:
            return 0.0
        return self.total_output_tokens / self.duration_s

    @property
    def slo_attainment(self) -> float:
        """Fraction of requests that met the SLO deadlines."""
        if not self.requests:
            return 0.0
        return sum(1 for m in self.requests if m.slo_met) / len(self.requests)

    @property
    def goodput_tokens_per_s(self) -> float:
        """Token throughput contributed by SLO-conforming requests only."""
        if self.duration_s <= 0:
            return 0.0
        good = sum(m.output_tokens for m in self.requests if m.slo_met)
        return good / self.duration_s

    def latency_summary(self) -> dict[str, dict[str, float]]:
        """p50/p95/p99 of TTFT, TPOT, queue wait and end-to-end latency.

        Each series also carries its ``samples`` count so a consumer can
        tell "no data" (percentiles are NaN, zero samples) from a
        genuinely zero latency.
        """
        series = {
            "ttft_s": [m.ttft_s for m in self.requests],
            "tpot_s": [m.tpot_s for m in self.requests],
            "queue_wait_s": [m.queue_wait_s for m in self.requests],
            "e2e_s": [m.e2e_s for m in self.requests],
        }
        summary: dict[str, dict[str, float]] = {}
        for name, values in series.items():
            entry = {f"p{q:g}": percentile(values, q) for q in PERCENTILES}
            entry["samples"] = float(len(values))
            summary[name] = entry
        return summary

    def class_summary(self) -> dict[str, dict[str, object]]:
        """Per-SLO-class latency and goodput split.

        For each service class present in the run: request/token counts,
        p50/p95/p99 TTFT and end-to-end latency, SLO attainment, and
        goodput — the quantities the preemption benchmark compares
        (interactive tail latency at equal batch-class goodput).
        """
        classes = sorted({m.slo_class for m in self.requests})
        summary: dict[str, dict[str, object]] = {}
        for cls in classes:
            members = [m for m in self.requests if m.slo_class == cls]
            ttfts = [m.ttft_s for m in members]
            e2es = [m.e2e_s for m in members]
            good = sum(m.output_tokens for m in members if m.slo_met)
            summary[cls] = {
                # The class's sample count: percentile consumers read it to
                # distinguish an all-rejected class (NaN percentiles) from
                # a served-but-fast one.
                "num_requests": len(members),
                "output_tokens": sum(m.output_tokens for m in members),
                "ttft_s": {f"p{q:g}": percentile(ttfts, q) for q in PERCENTILES},
                "e2e_s": {f"p{q:g}": percentile(e2es, q) for q in PERCENTILES},
                "slo_attainment": sum(1 for m in members if m.slo_met) / len(members),
                "goodput_tokens_per_s": (
                    good / self.duration_s if self.duration_s > 0 else 0.0
                ),
            }
        return summary

    def speculation(self) -> dict[str, float]:
        """Aggregate speculative-decoding accounting over the run.

        Sums the per-request round/draft/accept/reject counters and
        derives the two headline metrics: ``acceptance_rate``
        (accepted / drafted) and ``mean_accepted_run_length`` (accepted
        tokens per speculation round).
        ``accepted_tokens + rejected_tokens == drafted_tokens`` holds by
        construction.  All zeros when the run decoded without
        speculation.
        """
        rounds = sum(m.spec_rounds for m in self.requests)
        drafted = sum(m.spec_drafted_tokens for m in self.requests)
        accepted = sum(m.spec_accepted_tokens for m in self.requests)
        rejected = sum(m.spec_rejected_tokens for m in self.requests)
        return {
            "rounds": float(rounds),
            "drafted_tokens": float(drafted),
            "accepted_tokens": float(accepted),
            "rejected_tokens": float(rejected),
            "acceptance_rate": accepted / drafted if drafted else 0.0,
            "mean_accepted_run_length": accepted / rounds if rounds else 0.0,
        }

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        """Deterministic plain-dict form of the whole report.

        Contains only simulation-clock quantities — never wall time — so
        two runs with equal configuration and seeds serialise to identical
        documents (the bit-reproducibility contract).  Non-finite floats
        (the NaN percentiles of empty sample sets) are emitted as
        ``None`` so the JSON form stays standard.
        """
        return _jsonable({
            "num_replicas": self.num_replicas,
            "router": self.router,
            "clock": self.clock,
            "slo": self.slo.to_dict(),
            "num_requests": self.num_requests,
            "duration_s": self.duration_s,
            "engine_steps": self.engine_steps,
            "mean_occupancy": self.mean_occupancy,
            "total_output_tokens": self.total_output_tokens,
            "throughput_tokens_per_s": self.throughput_tokens_per_s,
            "goodput_tokens_per_s": self.goodput_tokens_per_s,
            "slo_attainment": self.slo_attainment,
            "latency": self.latency_summary(),
            "classes": self.class_summary(),
            "speculation": self.speculation(),
            "requests": [m.to_dict() for m in self.requests],
            "num_rejected": self.num_rejected,
            "rejected": [r.to_dict() for r in self.rejected],
            "num_retries": self.num_retries,
            "lost_tokens": self.lost_tokens,
            "num_migrations": self.num_migrations,
            "num_recoveries": self.num_recoveries,
            "num_preemptions": self.num_preemptions,
            "autoscaler": self.autoscaler,
            "admission": self.admission,
            "failures": self.failures,
            "scaling": self.scaling,
            "prefix_cache": self.prefix_cache,
        })

    def to_json(self) -> str:
        """Canonical JSON form of :meth:`to_dict` (sorted keys)."""
        return json.dumps(self.to_dict(), sort_keys=True)
