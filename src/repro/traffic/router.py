"""Pluggable request routing across serving replicas.

A :class:`Router` picks, for every arriving request, the replica that will
serve it.  Routers see lightweight :class:`ReplicaView` snapshots — queue
depth, active decodes, reserved KV bytes, the replica clock — and must be
deterministic: ties break toward the lowest replica index, so a simulation
is bit-reproducible regardless of the routing strategy.

Strategies self-register in a name registry mirroring
:mod:`repro.policies`: ``@register_router("name")`` makes a strategy
available to :func:`build_router`, the ``repro traffic-bench --router``
flag and `repro list` at once.  Built-ins:

* ``round_robin`` — cycle replicas in arrival order, load-blind;
* ``jsq`` — join the shortest queue (queued + active requests), the
  classic latency-optimal policy for homogeneous replicas;
* ``least_kv`` — join the replica with the fewest reserved KV bytes,
  which accounts for request *size* (long prompts and long decodes
  reserve more) rather than request *count*;
* ``prefix_affine`` — hash the request's leading prompt block to a
  replica, so requests sharing a prompt prefix land on the same
  replica-local prefix cache;
* ``slo_aware`` — class-aware placement: interactive requests join the
  shortest queue, batch requests join the replica with the most
  batch-class work, concentrating preemptible filler on few replicas so
  the rest stay responsive.
"""

from __future__ import annotations

import zlib
from typing import Callable, Protocol, Sequence

import numpy as np

from .workload import TrafficRequest

__all__ = [
    "ReplicaView",
    "Router",
    "RoundRobinRouter",
    "JoinShortestQueueRouter",
    "LeastKVBytesRouter",
    "PrefixAffineRouter",
    "SLOAwareRouter",
    "register_router",
    "build_router",
    "router_names",
]


class ReplicaView(Protocol):
    """The slice of replica state a routing decision may read."""

    index: int
    clock_s: float

    @property
    def queued(self) -> int:
        """Requests waiting in the replica's admission queue."""
        ...

    @property
    def active(self) -> int:
        """Requests currently decoding on the replica."""
        ...

    @property
    def reserved_kv_bytes(self) -> int:
        """Projected KV bytes reserved by the replica's in-flight requests."""
        ...


class Router:
    """Base class of routing strategies (stateful per simulation run)."""

    name = "abstract"

    def choose(self, replicas: Sequence[ReplicaView], request: TrafficRequest) -> int:
        """Index of the replica that serves ``request``."""
        raise NotImplementedError

    def reset(self) -> None:
        """Clear per-run cursor state (called at the start of every run)."""

    def describe(self) -> dict[str, object]:
        """Identifying configuration of this router (for reports)."""
        return {"name": self.name}


_ROUTERS: dict[str, type] = {}


def register_router(name: str) -> Callable[[type], type]:
    """Class decorator registering a :class:`Router` under ``name``."""

    def decorator(cls: type) -> type:
        existing = _ROUTERS.get(name)
        if existing is not None and existing is not cls:
            raise ValueError(f"router name {name!r} is already registered")
        _ROUTERS[name] = cls
        cls.name = name
        return cls

    return decorator


def router_names() -> tuple[str, ...]:
    """Sorted names of all registered routing strategies."""
    return tuple(sorted(_ROUTERS))


def build_router(name: str, **kwargs: object) -> Router:
    """Instantiate a registered router from its name and kwargs."""
    cls = _ROUTERS.get(name)
    if cls is None:
        known = ", ".join(router_names()) or "<none registered>"
        raise ValueError(f"unknown router {name!r}; registered: {known}")
    return cls(**kwargs)


@register_router("round_robin")
class RoundRobinRouter(Router):
    """Cycle through replicas in arrival order, ignoring load."""

    def __init__(self) -> None:
        self._next = 0

    def choose(self, replicas: Sequence[ReplicaView], request: TrafficRequest) -> int:
        """The next replica in cyclic order."""
        index = self._next % len(replicas)
        self._next += 1
        return index

    def reset(self) -> None:
        """Restart the cycle at replica 0."""
        self._next = 0


@register_router("jsq")
class JoinShortestQueueRouter(Router):
    """Join the replica with the fewest in-system requests.

    The load of a replica is ``queued + active``; ties break toward the
    lowest replica index.
    """

    def choose(self, replicas: Sequence[ReplicaView], request: TrafficRequest) -> int:
        """The replica with the fewest queued plus active requests."""
        return min(
            range(len(replicas)),
            key=lambda i: (replicas[i].queued + replicas[i].active, i),
        )


@register_router("least_kv")
class LeastKVBytesRouter(Router):
    """Join the replica with the fewest reserved KV bytes.

    Unlike ``jsq`` this weighs requests by their projected KV footprint,
    so one replica holding a few very long requests is considered more
    loaded than one holding many short ones.
    """

    def choose(self, replicas: Sequence[ReplicaView], request: TrafficRequest) -> int:
        """The replica with the smallest reserved KV footprint."""
        return min(
            range(len(replicas)),
            key=lambda i: (replicas[i].reserved_kv_bytes, i),
        )


@register_router("prefix_affine")
class PrefixAffineRouter(Router):
    """Route requests sharing a prompt prefix to the same replica.

    Prefix caches are replica-local, so a load-blind or size-aware router
    spreads requests with a common preamble across replicas and every
    replica pays the preamble's prefill once.  This router hashes the
    request's first ``block_tokens`` prompt tokens (the whole prompt when
    shorter) with CRC-32 and maps the hash onto the fleet, so all requests
    whose prompts agree on that leading block land on one replica and hit
    its cache.  The hash depends only on the token ids — deterministic
    across runs and machines.

    Parameters
    ----------
    block_tokens:
        Length of the hashed leading block; align it with the cache's
        ``prefix_block_tokens`` so routing granularity matches caching
        granularity.
    """

    def __init__(self, block_tokens: int = 32) -> None:
        if block_tokens <= 0:
            raise ValueError("block_tokens must be positive")
        self.block_tokens = block_tokens

    def choose(self, replicas: Sequence[ReplicaView], request: TrafficRequest) -> int:
        """The replica owning the hash bucket of the leading prompt block."""
        prompt = np.ascontiguousarray(
            np.asarray(request.prompt_ids, dtype=np.int64)[: self.block_tokens]
        )
        return int(zlib.crc32(prompt.tobytes()) % len(replicas))

    def describe(self) -> dict[str, object]:
        """Router name plus the hashed block length."""
        return {"name": self.name, "block_tokens": self.block_tokens}


@register_router("slo_aware")
class SLOAwareRouter(Router):
    """Class-aware placement: spread interactive, concentrate batch.

    Interactive requests join the shortest queue (their TTFT is the
    product).  Batch requests prefer the replica already holding the most
    in-system work — packing the preemptible filler onto few replicas
    keeps the remaining ones lightly loaded for interactive traffic, and
    on preemption-enabled engines the packed batch work is exactly what
    gets checkpointed out of an interactive head's way.  Both halves are
    deterministic with ties toward the lowest index.
    """

    def choose(self, replicas: Sequence[ReplicaView], request: TrafficRequest) -> int:
        """Shortest queue for interactive, fullest replica for batch."""
        if getattr(request, "slo_class", "interactive") == "batch":
            return min(
                range(len(replicas)),
                key=lambda i: (-(replicas[i].queued + replicas[i].active), i),
            )
        return min(
            range(len(replicas)),
            key=lambda i: (replicas[i].queued + replicas[i].active, i),
        )
