"""Request-shape mixes: turning arrival times into concrete requests.

A :class:`RequestShape` describes one class of traffic — a prompt-length
range, a decode length and an optional per-request compression policy —
and a weight.  :func:`generate_traffic` composes a shape mix with an
arrival process into a deterministic list of :class:`TrafficRequest`
objects: everything (shape choice, prompt lengths, prompt token ids) is
drawn from one seeded generator, so equal ``(shapes, arrivals, seed)``
produce bit-identical workloads.

The prompt token ids use the same uniform-over-vocabulary sampling as the
serving benchmark (:func:`repro.serving.bench.run_serve_bench`); richer
content — planted-span retrieval documents, LongBench-analogue tasks —
can be substituted per shape through ``prompt_sampler``, which receives
the seeded generator and the drawn length and returns the token ids (the
:mod:`repro.workloads` generators compose here).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..policies import PolicySpec, resolve_policy_spec
from ..serving.request import SLO_CLASSES

__all__ = ["TrafficRequest", "RequestShape", "generate_traffic"]

PromptSampler = Callable[[np.random.Generator, int], np.ndarray]


@dataclass(frozen=True)
class TrafficRequest:
    """One open-loop request: arrival instant plus generation parameters.

    Attributes
    ----------
    request_id:
        Unique id, stable across replicas and runs (derived from the
        arrival index by :func:`generate_traffic`).
    arrival_time_s:
        Arrival instant in seconds on the simulation clock.
    prompt_ids:
        Prompt token ids, shape ``(L,)``.
    max_new_tokens:
        Decode length of this request.
    policy:
        Optional per-request KV compression policy; ``None`` uses the
        replica engine's default selector.
    slo_class:
        Service class (``"interactive"`` or ``"batch"``): interactive
        requests are latency-sensitive and may preempt batch-class work
        on preemption-enabled replicas.
    """

    request_id: str
    arrival_time_s: float
    prompt_ids: np.ndarray
    max_new_tokens: int
    policy: PolicySpec | None = None
    slo_class: str = "interactive"

    def __post_init__(self) -> None:
        prompt = np.asarray(self.prompt_ids, dtype=np.int64)
        if prompt.ndim != 1 or prompt.shape[0] == 0:
            raise ValueError("prompt_ids must be a non-empty 1-D array")
        object.__setattr__(self, "prompt_ids", prompt)
        if self.max_new_tokens <= 0:
            raise ValueError("max_new_tokens must be positive")
        if self.arrival_time_s < 0:
            raise ValueError("arrival_time_s must be non-negative")
        if self.slo_class not in SLO_CLASSES:
            raise ValueError(
                f"slo_class must be one of {SLO_CLASSES}, got {self.slo_class!r}"
            )

    def prompt_length(self) -> int:
        """Number of prompt tokens."""
        return int(self.prompt_ids.shape[0])


@dataclass(frozen=True)
class RequestShape:
    """One class of requests in a traffic mix.

    Attributes
    ----------
    prompt_len_range:
        Inclusive ``(lo, hi)`` range prompt lengths are drawn from
        (uniformly).
    max_new_tokens:
        Decode length of requests of this shape.
    policy:
        KV compression policy of requests of this shape (spec or policy
        string, resolved at construction); ``None`` uses the engine
        default.
    weight:
        Relative frequency of this shape in the mix.
    slo_class:
        Service class of requests of this shape (``"interactive"`` or
        ``"batch"``).
    prompt_sampler:
        Optional override producing the prompt token ids from the seeded
        generator and the drawn length; defaults to uniform ids over the
        vocabulary.
    """

    prompt_len_range: tuple[int, int] = (48, 96)
    max_new_tokens: int = 32
    policy: PolicySpec | str | None = None
    weight: float = 1.0
    slo_class: str = "interactive"
    prompt_sampler: PromptSampler | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        lo, hi = self.prompt_len_range
        if lo <= 0 or hi < lo:
            raise ValueError("prompt_len_range must satisfy 0 < lo <= hi")
        if self.max_new_tokens <= 0:
            raise ValueError("max_new_tokens must be positive")
        if self.weight <= 0:
            raise ValueError("weight must be positive")
        if self.slo_class not in SLO_CLASSES:
            raise ValueError(
                f"slo_class must be one of {SLO_CLASSES}, got {self.slo_class!r}"
            )
        if self.policy is not None:
            object.__setattr__(self, "policy", resolve_policy_spec(self.policy))


def generate_traffic(
    shapes: Sequence[RequestShape],
    arrival_times: np.ndarray | Sequence[float],
    vocab_size: int,
    seed: int = 0,
    id_prefix: str = "t",
) -> list[TrafficRequest]:
    """Compose a shape mix with arrival times into concrete requests.

    Parameters
    ----------
    shapes:
        The request-shape mix; shape ``i`` is chosen with probability
        proportional to its weight.
    arrival_times:
        Arrival timestamps (seconds), one per request, non-decreasing —
        typically from an :class:`~repro.traffic.arrivals.ArrivalProcess`.
    vocab_size:
        Vocabulary size of the served model (prompt ids are drawn from
        ``[4, vocab_size)``, skipping special-token ids, as the serving
        benchmark does).
    seed:
        Seed of the generator driving shape choice, prompt lengths and
        prompt contents.
    id_prefix:
        Request ids are ``f"{id_prefix}{index}"``.

    Returns
    -------
    list of TrafficRequest
        One request per arrival time, in arrival order.
    """
    if not shapes:
        raise ValueError("shapes must be non-empty")
    times = np.asarray(arrival_times, dtype=np.float64)
    if times.ndim != 1:
        raise ValueError("arrival_times must be 1-D")
    if np.any(np.diff(times) < 0):
        raise ValueError("arrival_times must be non-decreasing")
    rng = np.random.default_rng(seed)
    weights = np.asarray([shape.weight for shape in shapes], dtype=np.float64)
    weights = weights / weights.sum()
    requests: list[TrafficRequest] = []
    for index, arrival in enumerate(times.tolist()):
        shape = shapes[int(rng.choice(len(shapes), p=weights))]
        lo, hi = shape.prompt_len_range
        length = int(rng.integers(lo, hi + 1))
        if shape.prompt_sampler is not None:
            prompt_ids = np.asarray(shape.prompt_sampler(rng, length), dtype=np.int64)
        else:
            prompt_ids = rng.integers(4, vocab_size, size=length).astype(np.int64)
        requests.append(
            TrafficRequest(
                request_id=f"{id_prefix}{index}",
                arrival_time_s=float(arrival),
                prompt_ids=prompt_ids,
                max_new_tokens=shape.max_new_tokens,
                policy=shape.policy,  # type: ignore[arg-type]
                slo_class=shape.slo_class,
            )
        )
    return requests
