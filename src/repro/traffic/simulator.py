"""Virtual-clock, multi-replica, open-loop traffic simulation.

The simulator drives one or more :class:`~repro.serving.BatchedEngine`
replicas open-loop: requests arrive at externally given instants (an
:class:`~repro.traffic.arrivals.ArrivalProcess` or a replayed trace), a
:class:`~repro.traffic.router.Router` picks the replica, and every engine
step is charged simulation time through a
:class:`~repro.traffic.clock.StepClock`.  Event order is fully
deterministic:

* an arrival is delivered before any replica steps past it (arrivals at
  exactly a step boundary are enqueued first);
* among replicas with work, the one with the smallest clock steps next
  (ties break toward the lowest index);
* routing sees replica state *at the arrival instant*, so
  join-shortest-queue reacts to the queues as they were when the request
  arrived.

Requests decode on the real NumPy engines — outputs are exactly what the
serving engine produces (a single replica at batch capacity 1 reproduces
``BatchedEngine.run()`` token for token) — while time is virtual: with the
default :class:`~repro.traffic.clock.PerfModelClock` the whole run is
machine-independent and two runs with equal seeds emit byte-identical
:class:`~repro.traffic.report.TrafficReport` JSON.
"""

from __future__ import annotations

import os
import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Sequence

from ..api import EngineSpec
from ..execbackend import (
    ExecutionBackend,
    LocalReplicaHandle,
    ReplicaHandle,
    SerialBackend,
    StepOutcome,
)
from ..serving import BatchedEngine, CompletedRequest
from .clock import StepClock, build_clock
from .report import RequestMetrics, SLOSpec, TrafficReport
from .router import Router, build_router
from .workload import TrafficRequest

__all__ = ["TrafficConfig", "Replica", "TrafficSimulator", "simulate"]


@dataclass(frozen=True)
class TrafficConfig:
    """Configuration of one traffic simulation.

    Attributes
    ----------
    engine:
        Replica engine description (model, default policy, budget,
        decoding and scheduler knobs); every replica is built from this
        one spec.
    num_replicas:
        Number of identical replicas behind the router.
    router:
        Routing strategy name (see :func:`repro.traffic.build_router`).
    clock:
        ``"perfmodel"`` (virtual, reproducible — the default) or
        ``"wall"`` (measured host time).
    arch / context_scale:
        Perfmodel-clock parameters: reference architecture priced, and
        the factor mapping simulated token counts to paper scale (matches
        :class:`repro.experiments.ContextScale` down-scaling).
    slo:
        TTFT/TPOT deadlines goodput is evaluated under.
    workers:
        Worker-process count for the ``multiprocess`` execution backend.
        Setting it implies ``backend="multiprocess"`` even when the
        engine spec says ``"serial"``; leaving it ``None`` with a
        multiprocess spec defaults to ``min(num_replicas, cpu_count)``.
        Virtual-clock results are byte-identical either way.
    """

    engine: EngineSpec = field(default_factory=EngineSpec)
    num_replicas: int = 1
    router: str = "round_robin"
    clock: str = "perfmodel"
    arch: str = "llama-3.1-8b"
    context_scale: int = 64
    slo: SLOSpec = field(default_factory=SLOSpec)
    workers: int | None = None

    def __post_init__(self) -> None:
        if self.num_replicas <= 0:
            raise ValueError("num_replicas must be positive")
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be at least 1 when set")


class Replica:
    """One serving engine plus its position on the simulation clock.

    The engine is driven through an execution-backend
    :class:`~repro.execbackend.ReplicaHandle` — in-process for the
    serial backend, worker-resident for the multiprocess one.  A bare
    :class:`~repro.serving.BatchedEngine` is wrapped on the spot for
    callers constructing replicas directly.
    """

    def __init__(self, index: int, engine: BatchedEngine | ReplicaHandle) -> None:
        self.index = index
        self.handle: ReplicaHandle = (
            engine if isinstance(engine, ReplicaHandle) else LocalReplicaHandle(engine)
        )
        self.clock_s = 0.0
        self.steps = 0
        self.occupancy: list[int] = []
        # Host wall time spent computing this replica's steps (virtual
        # clock time lives in clock_s) — observability only.
        self.step_wall_s = 0.0

    @property
    def engine(self) -> BatchedEngine:
        """The in-process engine (raises on worker-resident replicas)."""
        return self.handle.engine

    @property
    def queued(self) -> int:
        """Requests waiting in this replica's admission queue."""
        return self.handle.queued

    @property
    def active(self) -> int:
        """Requests currently decoding on this replica."""
        return self.handle.active

    @property
    def reserved_kv_bytes(self) -> int:
        """Projected KV bytes of this replica's in-flight *and queued* requests.

        Queued requests count too: during a burst, arrivals are routed
        before any replica steps, so a size-aware router must see the KV
        demand already committed to each queue, not just what has been
        admitted.
        """
        return self.handle.reserved_kv_bytes + self.handle.queued_kv_bytes

    def has_work(self) -> bool:
        """Whether the replica has queued, in-flight or preempted requests."""
        return self.handle.has_work()


class TrafficSimulator:
    """Open-loop simulation of routed traffic over engine replicas.

    Parameters
    ----------
    config:
        The simulation description; replicas, router and clock are built
        from it (a :class:`~repro.traffic.router.Router` or
        :class:`~repro.traffic.clock.StepClock` instance can be injected
        through ``router``/``clock`` for custom strategies).
    """

    def __init__(
        self,
        config: TrafficConfig | None = None,
        router: Router | None = None,
        clock: StepClock | None = None,
    ) -> None:
        self.config = config or TrafficConfig()
        self.model = self.config.engine.build_model()
        # The fleet is built fresh at the start of every run(); between
        # runs this holds the replicas of the last one (for inspection).
        self.replicas: list[Replica] = []
        self.router = router if router is not None else build_router(self.config.router)
        self.clock = (
            clock
            if clock is not None
            else build_clock(
                self.config.clock,
                arch=self.config.arch,
                context_scale=self.config.context_scale,
            )
        )
        # Retained outcomes of the last run() call.
        self.completed: dict[str, CompletedRequest] = {}
        # Per-run bookkeeping (reset by _reset_run_state at every run()).
        self._replica_of: dict[str, int] = {}
        self._admitted_at_s: dict[str, float] = {}
        self._first_token_at_s: dict[str, float] = {}
        self._metrics: list[RequestMetrics] = []
        self._duration_s = 0.0
        self._run_wall_s = 0.0
        self._backend = self._build_backend()

    def _build_backend(self) -> ExecutionBackend:
        """The execution backend replicas run on, from the config.

        ``config.workers`` set implies the multiprocess backend even when
        the engine spec says serial; a multiprocess spec with no worker
        count defaults to ``min(num_replicas, cpu_count)``.
        """
        spec = self.config.engine
        workers = self.config.workers
        if spec.backend == "multiprocess" or workers is not None:
            from ..execbackend import MultiprocessBackend

            if workers is None:
                workers = max(1, min(self.config.num_replicas, os.cpu_count() or 1))
            return MultiprocessBackend(self.model, spec, workers)
        return SerialBackend(self.model, spec)

    def close(self) -> None:
        """Release backend resources (worker processes, shared memory)."""
        self._backend.close()

    def __enter__(self) -> "TrafficSimulator":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover — GC safety net
        try:
            self.close()
        except Exception:
            pass

    def _build_replicas(self) -> list[Replica]:
        """Fresh replicas from the engine spec (the model is shared)."""
        return [
            Replica(index, self._backend.create_handle())
            for index in range(self.config.num_replicas)
        ]

    # ------------------------------------------------------------------
    # event loop
    # ------------------------------------------------------------------
    def _reset_run_state(self) -> None:
        """Clear the per-run bookkeeping at the start of every run()."""
        self.completed = {}
        self._replica_of = {}
        self._admitted_at_s = {}
        self._first_token_at_s = {}
        self._metrics = []
        self._duration_s = 0.0

    def _submit_to(self, replica: Replica, request: TrafficRequest) -> None:
        """Hand one arrived request to a replica's engine queue."""
        # An idle replica fast-forwards to the arrival instant; a working
        # one already sits at or past it (the arrival gate guarantees
        # arrival <= every working clock).
        replica.clock_s = max(replica.clock_s, request.arrival_time_s)
        replica.handle.submit(
            request.prompt_ids,
            request_id=request.request_id,
            max_new_tokens=request.max_new_tokens,
            policy=request.policy,
            arrival_time_s=request.arrival_time_s,
            slo_class=request.slo_class,
        )
        self._replica_of[request.request_id] = replica.index

    def _step_replica(self, replica: Replica) -> tuple[list[RequestMetrics], float]:
        """Run one engine step on ``replica`` and charge it clock time.

        Returns the metrics of the requests that retired during the step
        and the step's end instant on the replica clock.  The step may
        already be computing in a backend worker (speculation); this
        collects its outcome at exactly the serial processing point.
        """
        replica.handle.start_step()
        outcome = replica.handle.finish_step()
        return self._apply_step_outcome(replica, outcome)

    def _apply_step_outcome(
        self, replica: Replica, outcome: StepOutcome
    ) -> tuple[list[RequestMetrics], float]:
        """Charge one step outcome to the virtual clock and bookkeeping."""
        finished = outcome.finished
        trace = outcome.trace
        step_start_s = replica.clock_s
        step_end_s = step_start_s + self.clock.step_seconds(trace)
        replica.clock_s = step_end_s
        replica.steps += 1
        replica.occupancy.append(len(trace.decodes))
        replica.step_wall_s += outcome.wall_s
        for entry in trace.attaches:
            # A prefix-cache attach admits the request before any prefill
            # chunk of it runs; it never produces the first token itself.
            self._admitted_at_s.setdefault(entry.request_id, step_start_s)
        for entry in trace.prefills:
            # Under chunked prefill a request emits one prefill entry
            # per chunk: admission is the FIRST chunk's step start
            # (setdefault), while the first token lands at the end of
            # the LAST chunk's step (overwrite).
            self._admitted_at_s.setdefault(entry.request_id, step_start_s)
            self._first_token_at_s[entry.request_id] = step_end_s
        retired: list[RequestMetrics] = []
        for item in finished:
            record = self._metrics_of(item, step_end_s)
            retired.append(record)
            self._metrics.append(record)
            self.completed[item.request.request_id] = item
            self._duration_s = max(self._duration_s, step_end_s)
        return retired, step_end_s

    def run(self, requests: Sequence[TrafficRequest]) -> TrafficReport:
        """Simulate the given open-loop workload to completion.

        Each call starts from a cold fleet: replicas (engines, clocks,
        occupancy records) are rebuilt and the router's cursor state is
        reset, so repeated ``run()`` calls on one simulator are
        independent — the same workload yields the same report twice.
        """
        pending = deque(
            sorted(enumerate(requests), key=lambda item: (item[1].arrival_time_s, item[0]))
        )
        self._backend.reset()
        self.replicas = self._build_replicas()
        self.router.reset()
        self._reset_run_state()
        run_start = time.perf_counter()

        try:
            while pending or any(replica.has_work() for replica in self.replicas):
                working = [replica for replica in self.replicas if replica.has_work()]
                next_step_s = min((replica.clock_s for replica in working), default=None)
                gate_s = pending[0][1].arrival_time_s if pending else None
                if pending and (next_step_s is None or gate_s <= next_step_s):
                    _, request = pending.popleft()
                    target = int(self.router.choose(self.replicas, request))
                    if not 0 <= target < len(self.replicas):
                        raise ValueError(
                            f"router {self.router.name!r} chose replica {target}, "
                            f"but only {len(self.replicas)} exist"
                        )
                    self._submit_to(self.replicas[target], request)
                    continue

                # Speculation: every working replica strictly before the
                # next arrival must step before that arrival can touch it,
                # so its step compute may start now (the multiprocess
                # backend overlaps them across workers; serial defers).
                # Outcomes are still *processed* one at a time below, in
                # exactly the serial order.
                for candidate in working:
                    if gate_s is None or candidate.clock_s < gate_s:
                        candidate.handle.start_step()

                replica = min(working, key=lambda r: (r.clock_s, r.index))
                self._step_replica(replica)
        finally:
            # Fold worker-side GEMM/k-means tallies into this process's
            # active perf counter (no-op for the serial backend).
            self._backend.drain_counters()
            self._run_wall_s = time.perf_counter() - run_start

        return self._build_report()

    def _build_report(self) -> TrafficReport:
        """Assemble the report of the run that just drained."""
        occupancy = [o for replica in self.replicas for o in replica.occupancy]
        report = TrafficReport(
            requests=self._metrics,
            slo=self.config.slo,
            num_replicas=len(self.replicas),
            router=self.router.describe(),
            clock=self.clock.describe(),
            duration_s=self._duration_s,
            engine_steps=sum(replica.steps for replica in self.replicas),
            mean_occupancy=(sum(occupancy) / len(occupancy)) if occupancy else 0.0,
            num_preemptions=sum(
                replica.handle.num_preemptions_total for replica in self.replicas
            ),
            prefix_cache=self._prefix_cache_summary(),
        )
        report.wall = self._wall_summary()
        return report

    def _wall_summary(self) -> dict[str, object]:
        """Host wall-time breakdown of the run (never part of to_dict).

        ``idle_wall_s`` is the run wall time a replica spent *not*
        computing steps — waiting its turn under the serial backend,
        genuinely idle or overlapped under the multiprocess one.
        """
        return {
            "run_wall_s": self._run_wall_s,
            "step_wall_s": sum(replica.step_wall_s for replica in self.replicas),
            "replicas": [
                {
                    "replica": replica.index,
                    "step_wall_s": replica.step_wall_s,
                    "idle_wall_s": max(0.0, self._run_wall_s - replica.step_wall_s),
                }
                for replica in self.replicas
            ],
            "backend": self._backend.describe(),
        }

    def _prefix_cache_summary(self) -> dict[str, object]:
        """Fleet-wide prefix-cache accounting plus the hit/miss TTFT split.

        Counters are summed over the replica-local caches; the TTFT means
        split the served requests by whether they attached a cached prefix
        (``cached_prefix_tokens > 0``).  Empty when no replica ran with a
        prefix cache.
        """
        per_replica = [replica.handle.prefix_cache_stats() for replica in self.replicas]
        per_replica = [stats for stats in per_replica if stats]
        if not per_replica:
            return {}
        summed = (
            "hits",
            "misses",
            "hit_tokens",
            "inserted_tokens",
            "evicted_tokens",
            "evictions",
            "cached_tokens",
            "num_nodes",
        )
        summary: dict[str, object] = {
            key: int(sum(int(stats.get(key, 0)) for stats in per_replica))
            for key in summed
        }
        lookups = int(summary["hits"]) + int(summary["misses"])
        summary["hit_rate"] = int(summary["hits"]) / lookups if lookups else 0.0
        hit_ttfts = [m.ttft_s for m in self._metrics if m.cached_prefix_tokens > 0]
        miss_ttfts = [m.ttft_s for m in self._metrics if m.cached_prefix_tokens == 0]
        summary["requests_with_hit"] = len(hit_ttfts)
        summary["ttft_hit_mean_s"] = (
            float(sum(hit_ttfts) / len(hit_ttfts)) if hit_ttfts else 0.0
        )
        summary["ttft_miss_mean_s"] = (
            float(sum(miss_ttfts) / len(miss_ttfts)) if miss_ttfts else 0.0
        )
        return summary

    def _retries_of(self, request_id: str) -> int:
        """Failure-retry count of a request (always 0 without failures)."""
        return 0

    def _migrations_of(self, request_id: str) -> int:
        """Drain-migration count of a request (always 0 without a cluster)."""
        return 0

    def _recoveries_of(self, request_id: str) -> int:
        """Checkpoint-recovery count of a request (always 0 without failures)."""
        return 0

    def _metrics_of(self, item: CompletedRequest, finish_s: float) -> RequestMetrics:
        """Convert one retirement into its :class:`RequestMetrics` record."""
        request_id = item.request.request_id
        arrival = item.request.arrival_time_s
        first_token = self._first_token_at_s[request_id]
        tokens = len(item.result.output_ids)
        ttft = first_token - arrival
        tpot = (finish_s - first_token) / (tokens - 1) if tokens > 1 else 0.0
        return RequestMetrics(
            request_id=request_id,
            replica=self._replica_of[request_id],
            policy=item.result.method,
            arrival_time_s=arrival,
            queue_wait_s=self._admitted_at_s[request_id] - arrival,
            ttft_s=ttft,
            tpot_s=tpot,
            e2e_s=finish_s - arrival,
            prompt_tokens=item.request.prompt_length(),
            output_tokens=tokens,
            slo_met=self.config.slo.is_met(ttft, tpot),
            retries=self._retries_of(request_id),
            cached_prefix_tokens=int(
                getattr(item.result, "cached_prefix_tokens", 0)
            ),
            slo_class=item.request.slo_class,
            migrations=self._migrations_of(request_id),
            recoveries=self._recoveries_of(request_id),
            spec_rounds=int(getattr(item.result, "spec_rounds", 0)),
            spec_drafted_tokens=int(
                getattr(item.result, "spec_drafted_tokens", 0)
            ),
            spec_accepted_tokens=int(
                getattr(item.result, "spec_accepted_tokens", 0)
            ),
            spec_rejected_tokens=int(
                getattr(item.result, "spec_rejected_tokens", 0)
            ),
        )


def simulate(
    requests: Sequence[TrafficRequest],
    config: TrafficConfig | None = None,
    router: Router | None = None,
    clock: StepClock | None = None,
    *,
    workers: int | None = None,
) -> TrafficReport:
    """Run one traffic simulation and return its :class:`TrafficReport`.

    The one-call entry point the :mod:`repro.api` layer re-exports:
    build a workload (:func:`repro.traffic.generate_traffic` or
    :func:`repro.traffic.load_trace`), describe the fleet in a
    :class:`TrafficConfig`, and simulate.  ``workers`` selects the
    multiprocess execution backend with that many worker processes; the
    report is byte-identical to the serial default.
    """
    config = config or TrafficConfig()
    if workers is not None:
        config = replace(config, workers=workers)
    with TrafficSimulator(config, router=router, clock=clock) as simulator:
        return simulator.run(requests)
