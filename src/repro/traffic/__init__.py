"""Trace-driven traffic simulation, multi-replica routing and SLO metrics.

This subsystem turns the batched serving engine into a measurable serving
*system*: instead of draining a closed-loop batch, requests arrive
open-loop on a clock, are routed across one or more
:class:`~repro.serving.BatchedEngine` replicas, and every engine step is
charged simulation time — by default from the analytical performance
model at the paper's true scale, so latency-under-load experiments are
machine-independent and bit-reproducible.

The pieces compose left to right::

    arrivals  ->  workload/trace  ->  router  ->  replicas  ->  report
    (Poisson,     (shape mixes,       (round     (BatchedEngine (TTFT/TPOT
     on/off,       JSONL replay)       robin,     + StepTrace    p50/p95/p99,
     constant,                         jsq,       + virtual      goodput under
     trace)                            least_kv,  clock)         SLO deadlines)
                                       prefix_affine)

Entry points: :func:`simulate` (also re-exported as
:func:`repro.api.simulate`), :func:`run_traffic_bench` behind the
``repro traffic-bench`` CLI command, and the small registries
(:func:`build_arrivals`, :func:`build_router`) that make arrival
processes and routing strategies pluggable the same way
:mod:`repro.policies` makes compression methods pluggable.
"""

from .arrivals import (
    ArrivalProcess,
    ConstantArrivals,
    OnOffArrivals,
    PoissonArrivals,
    TraceArrivals,
    arrival_names,
    build_arrivals,
    register_arrivals,
)
from .bench import (
    TrafficBenchConfig,
    build_bench_requests,
    format_traffic_report,
    run_traffic_bench,
)
from .clock import PerfModelClock, StepClock, WallClock, build_clock
from .report import RequestMetrics, SLOSpec, TrafficReport
from .router import (
    JoinShortestQueueRouter,
    LeastKVBytesRouter,
    PrefixAffineRouter,
    ReplicaView,
    RoundRobinRouter,
    Router,
    SLOAwareRouter,
    build_router,
    register_router,
    router_names,
)
from .simulator import Replica, TrafficConfig, TrafficSimulator, simulate
from .trace import load_trace, save_trace
from .workload import RequestShape, TrafficRequest, generate_traffic

__all__ = [
    "ArrivalProcess",
    "ConstantArrivals",
    "PoissonArrivals",
    "OnOffArrivals",
    "TraceArrivals",
    "register_arrivals",
    "build_arrivals",
    "arrival_names",
    "TrafficRequest",
    "RequestShape",
    "generate_traffic",
    "save_trace",
    "load_trace",
    "Router",
    "ReplicaView",
    "RoundRobinRouter",
    "JoinShortestQueueRouter",
    "LeastKVBytesRouter",
    "PrefixAffineRouter",
    "SLOAwareRouter",
    "register_router",
    "build_router",
    "router_names",
    "StepClock",
    "PerfModelClock",
    "WallClock",
    "build_clock",
    "SLOSpec",
    "RequestMetrics",
    "TrafficReport",
    "TrafficConfig",
    "Replica",
    "TrafficSimulator",
    "simulate",
    "TrafficBenchConfig",
    "build_bench_requests",
    "run_traffic_bench",
    "format_traffic_report",
]
