"""Self-speculative decoding: drafter registry + speculation config.

Speculative decoding attacks the one cost PR 4's vectorization could
not: at decode time every request contributes a single token per
forward pass, so the batched GEMMs run at the float64 BLAS floor.  A
speculation round drafts ``k`` candidate tokens per request with a
cheap :class:`Drafter` (the default needs no second model — it
prompt-looks-up the request's own history), then verifies all ``k + 1``
positions in ONE batched pass through the engine's existing fused
QKV/attention machinery, multiplying the effective GEMM batch size.

The draft/verify/accept loop itself lives in the serving engine
(:meth:`repro.serving.BatchedEngine.step`); this package owns the
drafter abstraction, its registry, and the
:class:`SpeculationConfig` record threaded through
:class:`repro.api.EngineSpec`.
"""

from __future__ import annotations

from .config import SpeculationConfig
from .drafter import (
    Drafter,
    NGramDrafter,
    build_drafter,
    drafter_names,
    register_drafter,
)

__all__ = [
    "Drafter",
    "NGramDrafter",
    "SpeculationConfig",
    "build_drafter",
    "drafter_names",
    "register_drafter",
]
