"""Configuration record for speculative decoding."""

from __future__ import annotations

from dataclasses import dataclass

from .drafter import Drafter, build_drafter

__all__ = ["SpeculationConfig"]


@dataclass(frozen=True)
class SpeculationConfig:
    """How a serving engine speculates: which drafter, how many tokens.

    ``k`` is the *maximum* draft length per round; the engine clips it
    against each request's remaining token budget so speculation never
    overshoots ``max_new_tokens``, and the drafter may propose fewer
    (or no) tokens on unmatchable histories.
    """

    #: Registry name of the drafter (see :func:`repro.specdec.build_drafter`).
    drafter: str = "ngram"
    #: Maximum candidate tokens drafted per request per round.
    k: int = 4

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"speculation k must be >= 1, got {self.k}")
        if not self.drafter:
            raise ValueError("speculation drafter name must be non-empty")

    def build_drafter(self) -> Drafter:
        """Instantiate the configured drafter from the registry."""
        return build_drafter(self.drafter)

    def describe(self) -> dict[str, object]:
        """Identity of this configuration (for reports)."""
        return {"drafter": self.drafter, "k": self.k}
