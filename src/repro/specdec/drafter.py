"""Drafters: cheap candidate-token proposers for speculative decoding.

A :class:`Drafter` looks at a request's token history (prompt plus the
tokens emitted so far) and proposes up to ``k`` candidate continuation
tokens.  The serving engine then *verifies* all candidates in one
batched forward pass (see :meth:`repro.serving.BatchedEngine.step`):
whatever prefix of the draft matches what the model would have emitted
anyway is accepted wholesale, collapsing up to ``k + 1`` sequential
decode steps into a single batched one.

The registry starts with a single *self*-drafter — the seeded
n-gram/prompt-lookup drafter of Saxena's *Prompt Lookup Decoding* (and
the n-gram fallback path of vLLM's speculative module): no second model,
no extra weights, just suffix matching against the request's own
history.  The :class:`Drafter` interface is deliberately tiny so a
small-model drafter (Leviathan et al.) or a Medusa-style head can plug
in later without touching the engine: ``propose`` is the whole
contract.

Determinism contract
--------------------
``propose`` must be a pure function of ``(token_history, k)`` — no
internal mutable state, no RNG.  That is what makes speculation
checkpoint-safe for free: a speculation round lives entirely inside one
engine step, so a checkpoint taken between steps carries no draft state
at all, and the restored run re-derives identical drafts from the
identical history.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable, Sequence

__all__ = [
    "Drafter",
    "NGramDrafter",
    "register_drafter",
    "build_drafter",
    "drafter_names",
]


class Drafter(ABC):
    """Interface every drafter implements: history in, candidates out."""

    #: Registry name of the drafter (set by subclasses).
    name: str = ""

    @abstractmethod
    def propose(self, token_history: Sequence[int], k: int) -> list[int]:
        """Up to ``k`` candidate continuation tokens for this history.

        May return fewer than ``k`` tokens — including none at all, in
        which case the engine falls back to a plain decode step for the
        request this round.  Must be deterministic in its inputs (see
        the module docstring's determinism contract).
        """

    def describe(self) -> dict[str, object]:
        """Identity of this drafter (for reports and signatures)."""
        return {"name": self.name}


class NGramDrafter(Drafter):
    """Prompt-lookup self-drafter: suffix n-gram matching, no model.

    To draft from a history ``t_0 .. t_{L-1}``, find the longest suffix
    n-gram (length ``max_ngram`` down to 1) that also occurs *earlier*
    in the history; among equal-length matches prefer the most recent
    one.  The tokens that followed that earlier occurrence are the
    draft.  On repetitive text — exactly the regime where KV-compressed
    long-context decoding spends its time — acceptance rates are high;
    on novel text the drafter proposes nothing and the engine silently
    falls back to plain decoding.
    """

    name = "ngram"

    def __init__(self, max_ngram: int = 3, min_ngram: int = 1) -> None:
        if max_ngram < 1:
            raise ValueError(f"max_ngram must be >= 1, got {max_ngram}")
        if not 1 <= min_ngram <= max_ngram:
            raise ValueError(
                f"min_ngram must be in [1, max_ngram], got {min_ngram}"
            )
        self.max_ngram = max_ngram
        self.min_ngram = min_ngram

    def propose(self, token_history: Sequence[int], k: int) -> list[int]:
        """Continuation of the most recent earlier match of the suffix."""
        history = list(token_history)
        length = len(history)
        if k < 1 or length < self.min_ngram + 1:
            return []
        for n in range(min(self.max_ngram, length - 1), self.min_ngram - 1, -1):
            suffix = history[length - n :]
            # Scan candidate start positions right to left: most recent
            # earlier occurrence wins.  The match must end strictly
            # before the history's end so there is a continuation.
            for start in range(length - n - 1, -1, -1):
                if history[start : start + n] == suffix:
                    continuation = history[start + n : start + n + k]
                    if continuation:
                        return continuation
        return []

    def describe(self) -> dict[str, object]:
        """Name plus the n-gram window bounds."""
        return {
            "name": self.name,
            "max_ngram": self.max_ngram,
            "min_ngram": self.min_ngram,
        }


_DRAFTERS: dict[str, Callable[[], Drafter]] = {}


def register_drafter(name: str, factory: Callable[[], Drafter]) -> None:
    """Register a drafter factory under ``name`` (overwrites silently)."""
    _DRAFTERS[name] = factory


def build_drafter(name: str) -> Drafter:
    """Instantiate the registered drafter ``name``.

    Raises :class:`ValueError` with the known names when unknown, in the
    style of the policy registry.
    """
    try:
        factory = _DRAFTERS[name]
    except KeyError:
        known = ", ".join(sorted(_DRAFTERS))
        raise ValueError(f"unknown drafter {name!r} (known: {known})") from None
    return factory()


def drafter_names() -> tuple[str, ...]:
    """Sorted names of all registered drafters."""
    return tuple(sorted(_DRAFTERS))


register_drafter("ngram", NGramDrafter)
