"""Motivation analyses of the paper (Fig. 3a and Fig. 3b)."""

from .importance import ImportanceTrace, track_token_importance
from .fragmentation import FragmentationStats, analyse_page_fragmentation

__all__ = [
    "ImportanceTrace",
    "track_token_importance",
    "FragmentationStats",
    "analyse_page_fragmentation",
]
