"""Internal fragmentation of important tokens within pages (paper Fig. 3b).

Quest recalls KV at the granularity of fixed-size pages of consecutive
tokens.  The paper shows that important tokens are scattered: a page of 16
tokens typically contains only one or two of the truly important tokens, so
page-granularity recall wastes most of the budget.  This module quantifies
that fragmentation from the exact attention scores recorded by the engine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines.oracle import top_k_indices

__all__ = ["FragmentationStats", "analyse_page_fragmentation"]


@dataclass
class FragmentationStats:
    """Distribution of important tokens across pages.

    Attributes
    ----------
    page_size:
        Page size used for the analysis.
    top_k:
        Number of important tokens considered per step.
    important_per_occupied_page:
        Mean number of important tokens in pages that contain at least one.
    occupied_page_fraction:
        Fraction of pages containing at least one important token.
    pages_needed_fraction:
        Mean fraction of the context that must be loaded (in whole pages) to
        cover all important tokens — the fragmentation overhead factor.
    histogram:
        ``histogram[i]`` is the number of (step, page) pairs in which an
        occupied page holds exactly ``i + 1`` important tokens.
    """

    page_size: int
    top_k: int
    important_per_occupied_page: float
    occupied_page_fraction: float
    pages_needed_fraction: float
    histogram: np.ndarray

    @property
    def waste_factor(self) -> float:
        """Tokens loaded per important token when recalling whole pages."""
        if self.important_per_occupied_page == 0:
            return float("inf")
        return self.page_size / self.important_per_occupied_page


def analyse_page_fragmentation(
    score_vectors: list[np.ndarray],
    top_k: int,
    page_size: int = 16,
) -> FragmentationStats:
    """Analyse how top-``k`` important tokens spread across pages.

    Parameters
    ----------
    score_vectors:
        One exact attention-score vector per decoding step (over all cached
        tokens at that step), e.g. from ``StepAttentionRecord.true_scores``.
    top_k:
        Number of important tokens per step.
    page_size:
        Page size (Quest uses 16).
    """
    if not score_vectors:
        raise ValueError("score_vectors must not be empty")
    if top_k <= 0 or page_size <= 0:
        raise ValueError("top_k and page_size must be positive")

    histogram = np.zeros(page_size, dtype=np.int64)
    occupied_fractions = []
    pages_needed_fractions = []
    for scores in score_vectors:
        scores = np.asarray(scores, dtype=np.float64)
        k = min(top_k, scores.shape[0])
        important = top_k_indices(scores, k)
        pages = important // page_size
        unique_pages, counts = np.unique(pages, return_counts=True)
        for count in counts:
            histogram[min(int(count), page_size) - 1] += 1
        num_pages = int(np.ceil(scores.shape[0] / page_size))
        occupied_fractions.append(unique_pages.shape[0] / max(1, num_pages))
        pages_needed_fractions.append(
            unique_pages.shape[0] * page_size / max(1, scores.shape[0])
        )

    total_occupied = int(histogram.sum())
    mean_per_page = (
        float(np.sum((np.arange(page_size) + 1) * histogram)) / total_occupied
        if total_occupied
        else 0.0
    )
    return FragmentationStats(
        page_size=page_size,
        top_k=top_k,
        important_per_occupied_page=mean_per_page,
        occupied_page_fraction=float(np.mean(occupied_fractions)),
        pages_needed_fraction=float(np.mean(pages_needed_fractions)),
        histogram=histogram,
    )
