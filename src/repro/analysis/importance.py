"""Token-importance dynamics across decoding steps (paper Fig. 3a).

The paper motivates recallable compression by showing that the attention
weight *ranking* of individual tokens fluctuates strongly across decoding
steps: a token that is unimportant at one step can become crucial twenty
steps later.  This module reproduces that analysis: it runs generation with
the full KV cache while recording the exact attention scores of a traced
layer, and extracts the rank trajectory of chosen context tokens.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines.full import FullKVSelector
from ..model.config import GenerationConfig
from ..model.generation import InferenceEngine
from ..model.transformer import TransformerModel

__all__ = ["ImportanceTrace", "track_token_importance"]


@dataclass
class ImportanceTrace:
    """Rank trajectories of selected tokens over decoding steps.

    Attributes
    ----------
    token_positions:
        The traced context token positions.
    rankings:
        ``(num_steps, num_tokens)`` array; entry ``[s, i]`` is the rank of
        ``token_positions[i]`` at decoding step ``s`` (0 = most important).
    head:
        The kv head whose attention was traced.
    layer:
        The traced layer.
    """

    token_positions: np.ndarray
    rankings: np.ndarray
    head: int
    layer: int

    @property
    def num_steps(self) -> int:
        """Number of recorded decoding steps."""
        return int(self.rankings.shape[0])

    def rank_range(self, token_index: int) -> tuple[int, int]:
        """Smallest and largest rank reached by one traced token."""
        column = self.rankings[:, token_index]
        return int(column.min()), int(column.max())

    def rank_variation(self) -> np.ndarray:
        """Rank range (max - min) per traced token: the Fig. 3a fluctuation."""
        return self.rankings.max(axis=0) - self.rankings.min(axis=0)


def track_token_importance(
    model: TransformerModel,
    prompt_ids: np.ndarray,
    token_positions: np.ndarray | list[int],
    num_steps: int = 64,
    head: int = 0,
    num_sink_tokens: int = 16,
) -> ImportanceTrace:
    """Track the attention-weight ranking of chosen tokens during decoding.

    Generation uses the full KV cache (the analysis is about the model's own
    attention, not about any compression method).
    """
    token_positions = np.asarray(token_positions, dtype=np.int64)
    config = GenerationConfig(
        budget=None,
        max_new_tokens=num_steps + 1,
        num_full_layers=0,
        num_sink_tokens=num_sink_tokens,
        record_attention_trace=True,
    )
    engine = InferenceEngine(model, FullKVSelector(), config)
    result = engine.generate(prompt_ids)

    records = [rec for rec in result.attention_trace if rec.true_scores is not None]
    if not records:
        raise RuntimeError("no attention trace was recorded")
    layer = records[0].layer
    rankings = np.zeros((len(records), token_positions.shape[0]), dtype=np.int64)
    for step_idx, record in enumerate(records):
        scores = record.true_scores[head]
        # rank 0 = largest score.
        order = np.argsort(-scores, kind="stable")
        ranks = np.empty_like(order)
        ranks[order] = np.arange(order.shape[0])
        valid = token_positions < scores.shape[0]
        rankings[step_idx, valid] = ranks[token_positions[valid]]
        rankings[step_idx, ~valid] = scores.shape[0]
    return ImportanceTrace(
        token_positions=token_positions, rankings=rankings, head=head, layer=layer
    )
