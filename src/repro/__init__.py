"""Reproduction of *ClusterKV: Manipulating LLM KV Cache in Semantic Space
for Recallable Compression* (DAC 2025).

Top-level convenience re-exports; see the subpackages for the full API:

* :mod:`repro.core` — the ClusterKV method (clustering, selection, caching).
* :mod:`repro.baselines` — Full KV, Quest, InfiniGen, H2O, StreamingLLM and
  the exact top-k oracle.
* :mod:`repro.model` — the NumPy transformer inference substrate.
* :mod:`repro.memory` — GPU/CPU memory tiers and transfer accounting.
* :mod:`repro.perfmodel` — the analytical latency/throughput model.
* :mod:`repro.workloads` — synthetic long-context workloads (LongBench and
  PG19 analogues).
* :mod:`repro.metrics` — F1, ROUGE-L, perplexity, recall rate.
* :mod:`repro.experiments` — one module per paper table/figure.
* :mod:`repro.serving` — batched multi-request serving with continuous
  scheduling over any of the above compression methods.
"""

from .baselines import (
    FullKVSelector,
    H2OSelector,
    InfiniGenSelector,
    OracleTopKSelector,
    QuestSelector,
    StreamingLLMSelector,
)
from .core import ClusterKVConfig, ClusterKVSelector
from .model import (
    GenerationConfig,
    InferenceEngine,
    ModelConfig,
    SyntheticTokenizer,
    TransformerModel,
    get_model_config,
    get_reference_architecture,
)
from .serving import (
    BatchedEngine,
    ContinuousBatchingScheduler,
    RequestQueue,
    SchedulerConfig,
    ServeReport,
    ServeRequest,
    serve_prompts,
)

__version__ = "0.1.0"

__all__ = [
    "__version__",
    "ClusterKVConfig",
    "ClusterKVSelector",
    "FullKVSelector",
    "QuestSelector",
    "InfiniGenSelector",
    "H2OSelector",
    "StreamingLLMSelector",
    "OracleTopKSelector",
    "ModelConfig",
    "GenerationConfig",
    "TransformerModel",
    "InferenceEngine",
    "SyntheticTokenizer",
    "get_model_config",
    "get_reference_architecture",
    "BatchedEngine",
    "ServeReport",
    "ServeRequest",
    "RequestQueue",
    "ContinuousBatchingScheduler",
    "SchedulerConfig",
    "serve_prompts",
]
