"""Reproduction of *ClusterKV: Manipulating LLM KV Cache in Semantic Space
for Recallable Compression* (DAC 2025).

Top-level convenience re-exports; see the subpackages for the full API:

* :mod:`repro.api` — the public session facade: :class:`Session` built
  from one :class:`EngineSpec`, with ``generate()``, ``submit()/step()``
  and a ``stream()`` iterator of per-token events.
* :mod:`repro.policies` — the policy registry: every compression method
  self-registers by name; :class:`PolicySpec` describes a configured
  method declaratively (dict/JSON/CLI round-trips) and every request can
  carry its own policy.
* :mod:`repro.core` — the ClusterKV method (clustering, selection, caching).
* :mod:`repro.baselines` — Full KV, Quest, InfiniGen, H2O, StreamingLLM and
  the exact top-k oracle.
* :mod:`repro.model` — the NumPy transformer inference substrate.
* :mod:`repro.memory` — GPU/CPU memory tiers and transfer accounting.
* :mod:`repro.perfmodel` — the analytical latency/throughput model.
* :mod:`repro.workloads` — synthetic long-context workloads (LongBench and
  PG19 analogues).
* :mod:`repro.metrics` — F1, ROUGE-L, perplexity, recall rate.
* :mod:`repro.experiments` — one module per paper table/figure.
* :mod:`repro.serving` — batched multi-request serving with continuous
  scheduling over any of the above compression methods.
* :mod:`repro.prefixcache` — the cross-request prefix/KV cache: a radix
  tree over prompt token blocks with refcounted LRU eviction; the serving
  engine attaches requests to the longest cached prefix and prefills only
  the suffix.
* :mod:`repro.traffic` — trace-driven open-loop traffic simulation:
  seeded arrival processes, multi-replica routing and TTFT/TPOT/goodput
  SLO metrics on a virtual perfmodel clock.
* :mod:`repro.cluster` — the elastic control plane over the traffic
  simulator: autoscaler and admission-control registries, seeded
  failure injection with deterministic retries, and the
  ``repro cluster-bench`` scenario harness.
"""

from .baselines import (
    FullKVSelector,
    H2OSelector,
    InfiniGenSelector,
    OracleTopKSelector,
    QuestSelector,
    StreamingLLMSelector,
)
from .core import ClusterKVConfig, ClusterKVSelector
from .model import (
    GenerationConfig,
    InferenceEngine,
    ModelConfig,
    SyntheticTokenizer,
    TransformerModel,
    get_model_config,
    get_reference_architecture,
)
from .policies import (
    PolicySpec,
    UnknownPolicyError,
    available_policies,
    build_policy,
    policy_spec_of,
    register_policy,
)
from .serving import (
    BatchedEngine,
    ContinuousBatchingScheduler,
    RequestQueue,
    SchedulerConfig,
    ServeReport,
    ServeRequest,
    serve_prompts,
)
from .api import EngineSpec, Session, TokenEvent, simulate, simulate_cluster
from .cluster import ClusterConfig, FailurePlan
from .prefixcache import PrefixCacheConfig, RadixPrefixCache
from .traffic import SLOSpec, TrafficConfig, TrafficReport

__version__ = "0.1.0"

__all__ = [
    "__version__",
    "Session",
    "EngineSpec",
    "TokenEvent",
    "simulate",
    "simulate_cluster",
    "TrafficConfig",
    "TrafficReport",
    "SLOSpec",
    "ClusterConfig",
    "FailurePlan",
    "PolicySpec",
    "UnknownPolicyError",
    "register_policy",
    "build_policy",
    "available_policies",
    "policy_spec_of",
    "ClusterKVConfig",
    "ClusterKVSelector",
    "FullKVSelector",
    "QuestSelector",
    "InfiniGenSelector",
    "H2OSelector",
    "StreamingLLMSelector",
    "OracleTopKSelector",
    "ModelConfig",
    "GenerationConfig",
    "TransformerModel",
    "InferenceEngine",
    "SyntheticTokenizer",
    "get_model_config",
    "get_reference_architecture",
    "BatchedEngine",
    "ServeReport",
    "ServeRequest",
    "RequestQueue",
    "ContinuousBatchingScheduler",
    "SchedulerConfig",
    "serve_prompts",
    "PrefixCacheConfig",
    "RadixPrefixCache",
]
