"""Versioned, policy-aware checkpoints of live sequence state.

A :class:`SequenceCheckpoint` captures everything one in-flight generation
request owns — the per-layer KV buffers, the selector states of the active
compression policy (via the :meth:`~repro.baselines.base.
LayerSelectorState.export_state` hook, the generalisation of PR 6's
prefix-cache export to arbitrary decode positions), the pointer-head
history, the sampler RNG and the partially built
:class:`~repro.model.generation.GenerationResult` — plus the request's
identity and scheduling progress.  Restoring a checkpoint onto a fresh
:class:`~repro.model.generation.SequenceState` (same model, same
generation configuration, same policy configuration) reproduces the
remaining decode **bit for bit**: every restored run emits exactly the
tokens and log-probabilities the uninterrupted run would have.

Why this is exact
-----------------
The engine's mutable per-request state is *closed*: a decode step reads
only (a) the KV cache, (b) the selector states, (c) the pointer-head
history, (d) the RNG (for sampled decoding) and (e) the scheduling
progress counters — all of which the checkpoint copies verbatim (float64
KV entries, deep-copied selector ``__dict__``, the RNG bit-generator
state).  The engine-level work buffers are stateless scratch space whose
stale contents are masked every step, so they need no capture.  The same
closure argument underlies the serving engine's batch-1 ≡ single-sequence
bit-identity; checkpointing just snapshots the closure at an arbitrary
point.

Checkpoints are the unit of mobility in the cluster layer: scale-downs
*migrate* in-flight requests instead of draining run-to-completion,
failure victims resume from their last periodic checkpoint instead of
re-prefilling, and a preempting scheduler parks low-priority requests
under KV pressure.  Creating a checkpoint is free on the virtual clock
(ClusterKV keeps the full KV host-resident already); moving one between
replicas is priced as a host-to-host KV transfer by
:meth:`repro.perfmodel.StepCostModel.migration_seconds`.
"""

from __future__ import annotations

import copy
import json
from dataclasses import dataclass

import numpy as np

from ..baselines.base import KVSelectorFactory
from ..memory import OffloadManager
from ..model.config import GenerationConfig, ModelConfig
from ..model.generation import GenerationResult, SequenceState
from ..model.transformer import TransformerModel
from ..perf import counters
from ..policies import PolicySpec

__all__ = [
    "SEQSTATE_VERSION",
    "SequenceCheckpoint",
    "policy_signature",
    "checkpoint_sequence",
    "restore_sequence",
]

# Format version of SequenceCheckpoint; bumped whenever the captured
# fields change incompatibly.  Restore refuses mismatched versions.
SEQSTATE_VERSION = 1


def policy_signature(selector: KVSelectorFactory) -> str:
    """Canonical signature of a selector's full configuration.

    Checkpoints may only be restored under a selector with the *same*
    signature: two ClusterKV configurations with different segment sizes
    build incompatible cluster structures, so state never crosses policy
    configurations.  This is the same keying the prefix cache uses for
    semantic-state reuse.
    """
    return json.dumps(selector.describe(), sort_keys=True, default=str)


@dataclass(frozen=True)
class SequenceCheckpoint:
    """One versioned snapshot of a live request's complete decoding state.

    The numerical payload (``kv_keys``/``kv_values``, ``layer_states``,
    ``rng_state``, the pointer-head history, ``result``) is captured by
    :func:`checkpoint_sequence`; the request identity and scheduling
    progress fields are filled by the serving layer
    (:meth:`repro.serving.BatchedEngine.checkpoint_request`).  Instances
    are immutable and self-contained — every array is an owned copy, so a
    checkpoint stays valid after its source sequence keeps decoding or is
    released.

    Attributes
    ----------
    version:
        Checkpoint format version (:data:`SEQSTATE_VERSION`).
    policy_signature / policy_name:
        Canonical configuration signature and name of the selector the
        sequence decodes under; restore validates the signature.
    generation_config / model_config:
        The exact configurations the sequence ran under; restore requires
        equality (bit-identity is only defined against the same model and
        decoding configuration).
    position / prefilled:
        Sequence progress: KV context length in tokens, and whether the
        first prefill chunk has landed.
    rng_state:
        The sampler's ``bit_generator.state`` dict (exact for sampled
        decoding; irrelevant but still carried for greedy runs).
    kv_keys / kv_values:
        Per-layer float64 KV copies, shape ``(n_kv_heads, L, head_dim)``.
    layer_states:
        Per-layer selector snapshots from
        :meth:`~repro.baselines.base.LayerSelectorState.export_state`
        (``None`` for the leading uncompressed layers).
    copy_token_ids / copy_keys / copy_state / prefill_copy_keys:
        Pointer-head history, its selector state and the not-yet-observed
        prefill key blocks (mid-chunk checkpoints); ``None``/empty for
        models without a copy head.
    result:
        Deep copy of the in-progress generation result (tokens and
        log-probabilities emitted so far, live statistics).
    request_id / prompt_ids / max_new_tokens / seed / policy /
    arrival_order / arrival_time_s / slo_class:
        Request identity, as submitted (``max_new_tokens`` is stored
        *resolved* against the engine default).
    current_token / decode_step / prefill_pos / first_token_step / status:
        Serving-engine progress: the token to feed back next, the decode
        step index, prompt tokens prefilled so far, the engine step of the
        first emitted token (``-1`` while still prefilling), and the
        lifecycle stage (``"prefilling"`` or ``"decoding"``) at capture.
    """

    version: int
    policy_signature: str
    policy_name: str
    generation_config: GenerationConfig
    model_config: ModelConfig
    position: int
    prefilled: bool
    rng_state: dict
    kv_keys: tuple[np.ndarray, ...]
    kv_values: tuple[np.ndarray, ...]
    layer_states: tuple[dict | None, ...]
    copy_token_ids: tuple[int, ...] | None
    copy_keys: tuple[np.ndarray, ...] | None
    copy_state: dict | None
    prefill_copy_keys: tuple[np.ndarray, ...]
    result: GenerationResult
    request_id: str = ""
    prompt_ids: np.ndarray | None = None
    max_new_tokens: int | None = None
    seed: int | None = None
    policy: PolicySpec | None = None
    arrival_order: int = 0
    arrival_time_s: float = 0.0
    slo_class: str = "interactive"
    current_token: int = -1
    decode_step: int = 0
    prefill_pos: int = 0
    first_token_step: int = -1
    status: str = "decoding"

    @property
    def num_tokens(self) -> int:
        """KV context length in tokens — what a migration must transfer."""
        return self.position

    @property
    def tokens_generated(self) -> int:
        """Tokens the request had emitted at capture time."""
        return len(self.result.output_ids)

    def describe(self) -> dict[str, object]:
        """Compact identifying summary (for logs and reports)."""
        return {
            "version": self.version,
            "request_id": self.request_id,
            "policy": self.policy_name,
            "position": self.position,
            "tokens_generated": self.tokens_generated,
            "status": self.status,
            "slo_class": self.slo_class,
        }


def checkpoint_sequence(
    model: TransformerModel,
    generation_config: GenerationConfig,
    seq: SequenceState,
) -> SequenceCheckpoint:
    """Capture the complete decoding state of one live sequence.

    The sequence keeps running unaffected — every captured array is a
    copy.  Engine-level progress fields (request identity, decode step)
    are left at their defaults; the serving layer fills them in.
    """
    config = model.config
    kv_keys: list[np.ndarray] = []
    kv_values: list[np.ndarray] = []
    for layer_idx in range(config.n_layers):
        kv_keys.append(seq.kv_store.keys(layer_idx).copy())
        kv_values.append(seq.kv_store.values(layer_idx).copy())
    layer_states = tuple(
        state.export_state() if state is not None else None
        for state in seq.layer_states
    )
    copy_token_ids: tuple[int, ...] | None = None
    copy_keys: tuple[np.ndarray, ...] | None = None
    if seq.copy_head is not None:
        head_state = seq.copy_head.export_state()
        copy_token_ids = tuple(head_state["token_ids"])  # type: ignore[arg-type]
        copy_keys = tuple(head_state["copy_keys"])  # type: ignore[arg-type]
    counters.record("seqstate.checkpointed_tokens", seq.position)
    return SequenceCheckpoint(
        version=SEQSTATE_VERSION,
        policy_signature=policy_signature(seq.selector),
        policy_name=seq.selector.name,
        generation_config=generation_config,
        model_config=config,
        position=seq.position,
        prefilled=seq.prefilled,
        rng_state=copy.deepcopy(seq.rng.bit_generator.state),
        kv_keys=tuple(kv_keys),
        kv_values=tuple(kv_values),
        layer_states=layer_states,
        copy_token_ids=copy_token_ids,
        copy_keys=copy_keys,
        copy_state=(
            seq.copy_state.export_state() if seq.copy_state is not None else None
        ),
        prefill_copy_keys=tuple(
            block.copy() for block in seq._prefill_copy_keys
        ),
        result=copy.deepcopy(seq.result),
    )


def restore_sequence(
    model: TransformerModel,
    generation_config: GenerationConfig,
    checkpoint: SequenceCheckpoint,
    selector: KVSelectorFactory,
    offload: OffloadManager,
    buffer_prefix: str = "",
) -> SequenceState:
    """Rebuild a live sequence from a checkpoint, bit-identical.

    A fresh :class:`SequenceState` is created (registering new KV buffers
    on ``offload``, which may belong to a different replica than the
    source — that is what makes checkpoints migratable) and every captured
    field is written back.  Raises :class:`ValueError` when the
    checkpoint's version, model configuration, generation configuration or
    policy signature do not match the restore target: exactness is only
    defined within one configuration, so mismatches are refused rather
    than silently degraded.
    """
    if checkpoint.version != SEQSTATE_VERSION:
        raise ValueError(
            f"checkpoint version {checkpoint.version} does not match "
            f"the supported version {SEQSTATE_VERSION}"
        )
    if checkpoint.model_config != model.config:
        raise ValueError(
            f"checkpoint was captured on model {checkpoint.model_config.name!r} "
            f"and cannot restore onto {model.config.name!r}"
        )
    if checkpoint.generation_config != generation_config:
        raise ValueError(
            "checkpoint generation configuration does not match the restore target"
        )
    signature = policy_signature(selector)
    if signature != checkpoint.policy_signature:
        raise ValueError(
            f"checkpoint policy signature {checkpoint.policy_signature} does not "
            f"match the restore selector's {signature}"
        )
    seq = SequenceState(
        model,
        selector,
        generation_config,
        offload,
        buffer_prefix=buffer_prefix,
        seed=checkpoint.seed,
    )
    for layer_idx in range(model.config.n_layers):
        keys = checkpoint.kv_keys[layer_idx]
        if keys.shape[1] > 0:
            seq.kv_store.append(
                layer_idx, keys, checkpoint.kv_values[layer_idx], step=-1
            )
    for state, payload in zip(seq.layer_states, checkpoint.layer_states):
        if (state is None) != (payload is None):
            raise ValueError(
                "checkpoint layer-state layout does not match the restore target"
            )
        if state is not None and payload is not None:
            state.restore_state(payload)
    if seq.copy_head is not None:
        if checkpoint.copy_token_ids is None or checkpoint.copy_keys is None:
            raise ValueError(
                "restore target has a copy head but the checkpoint captured none"
            )
        seq.copy_head.restore_state(
            {
                "token_ids": list(checkpoint.copy_token_ids),
                "copy_keys": list(checkpoint.copy_keys),
            }
        )
        if seq.copy_state is not None and checkpoint.copy_state is not None:
            seq.copy_state.restore_state(checkpoint.copy_state)
    seq._prefill_copy_keys = [block.copy() for block in checkpoint.prefill_copy_keys]
    seq.rng.bit_generator.state = copy.deepcopy(checkpoint.rng_state)
    seq.prefilled = checkpoint.prefilled
    seq.position = checkpoint.position
    seq.result = copy.deepcopy(checkpoint.result)
    counters.record("seqstate.restored_tokens", checkpoint.position)
    return seq
