"""Live sequence-state checkpointing: mobile, restorable request state.

The :mod:`repro.seqstate` subsystem makes a request's decoding state a
first-class, mobile object.  :class:`SequenceCheckpoint` is a versioned,
policy-aware snapshot of everything one in-flight request owns;
:func:`checkpoint_sequence` / :func:`restore_sequence` prove the round
trip bit-identical to uninterrupted decoding for every registered policy.
The serving engine builds preemption on top
(:meth:`repro.serving.BatchedEngine.checkpoint_request`), and the cluster
layer builds live migration and failure recovery
(:class:`repro.cluster.ClusterSimulator` with ``migrate_on_drain`` and
``checkpoint_interval_s``).
"""

from .checkpoint import (
    SEQSTATE_VERSION,
    SequenceCheckpoint,
    checkpoint_sequence,
    policy_signature,
    restore_sequence,
)

__all__ = [
    "SEQSTATE_VERSION",
    "SequenceCheckpoint",
    "checkpoint_sequence",
    "policy_signature",
    "restore_sequence",
]
