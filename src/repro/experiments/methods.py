"""Construction of the KV selection methods used by the experiments.

All accuracy experiments compare the same set of methods the paper does
(Full KV, Quest, InfiniGen, ClusterKV); this module centralises how each
method is instantiated at simulation scale so that every experiment uses
identical configurations.

Methods are resolved through the policy registry
(:mod:`repro.policies`): :func:`build_selector` turns a method name into a
:class:`~repro.policies.PolicySpec` carrying the experiment-scale
configuration and builds it with :func:`repro.policies.build_policy`, so
any selector registered by a third party is immediately usable in every
experiment, and an unknown name fails with the full list of registered
policies.
"""

from __future__ import annotations

import dataclasses

from ..baselines import KVSelectorFactory
from ..core import ClusterKVConfig
from ..policies import PolicySpec, build_policy
from .scale import ContextScale, DEFAULT_SCALE

__all__ = [
    "ACCURACY_METHODS",
    "build_selector",
    "build_selector_spec",
    "build_clusterkv_config",
]

# Methods compared in the paper's accuracy experiments (Fig. 9, 10, 11a).
ACCURACY_METHODS = ("full", "clusterkv", "quest", "infinigen")

# Quest's page size is an algorithmic constant of the original work and is
# not scaled with the context.
_QUEST_PAGE_SIZE = 16


def build_clusterkv_config(
    scale: ContextScale = DEFAULT_SCALE,
    distance_metric: str = "cosine",
    tokens_per_cluster: int | None = None,
    cache_history: int = 1,
) -> ClusterKVConfig:
    """ClusterKV configuration at simulation scale.

    The paper's constants are ``tokens_per_cluster = 80``, ``m = 320`` and
    ``C+ = 4`` at 32k-token scale; lengths scale down with the context
    scale, while per-cluster token counts keep their ratio to the context.
    """
    if tokens_per_cluster is None:
        tokens_per_cluster = max(4, 80 // max(1, scale.factor // 4))
    return ClusterKVConfig(
        tokens_per_cluster=tokens_per_cluster,
        decode_window=max(4, scale.length(320)),
        decode_clusters=2 if scale.factor > 4 else 4,
        num_sink_tokens=scale.sink_tokens(),
        distance_metric=distance_metric,
        cache_history=cache_history,
    )


def build_selector_spec(
    name: str,
    scale: ContextScale = DEFAULT_SCALE,
    clusterkv_config: ClusterKVConfig | None = None,
) -> PolicySpec:
    """Declarative policy spec of a method at experiment scale.

    ClusterKV carries the scale-dependent clustering constants of
    :func:`build_clusterkv_config`; Quest pins its algorithmic page size;
    every other method uses its registered defaults.
    """
    if name == "clusterkv":
        config = clusterkv_config or build_clusterkv_config(scale)
        return PolicySpec(name, dataclasses.asdict(config))
    if name == "quest":
        return PolicySpec(name, {"page_size": _QUEST_PAGE_SIZE})
    return PolicySpec(name)


def build_selector(
    name: str,
    scale: ContextScale = DEFAULT_SCALE,
    clusterkv_config: ClusterKVConfig | None = None,
) -> KVSelectorFactory:
    """Instantiate a selector factory by method name via the policy registry.

    Raises
    ------
    repro.policies.UnknownPolicyError
        For an unregistered name; the message lists all known methods.
    """
    return build_policy(build_selector_spec(name, scale, clusterkv_config))
