"""Construction of the KV selection methods used by the experiments.

All accuracy experiments compare the same set of methods the paper does
(Full KV, Quest, InfiniGen, ClusterKV); this module centralises how each
method is instantiated at simulation scale so that every experiment uses
identical configurations.
"""

from __future__ import annotations

from ..baselines import (
    FullKVSelector,
    H2OSelector,
    InfiniGenSelector,
    KVSelectorFactory,
    OracleTopKSelector,
    QuestSelector,
    StreamingLLMSelector,
)
from ..baselines.infinigen import InfiniGenConfig
from ..baselines.quest import QuestConfig
from ..core import ClusterKVConfig, ClusterKVSelector
from .scale import ContextScale, DEFAULT_SCALE

__all__ = [
    "ACCURACY_METHODS",
    "build_selector",
    "build_clusterkv_config",
]

# Methods compared in the paper's accuracy experiments (Fig. 9, 10, 11a).
ACCURACY_METHODS = ("full", "clusterkv", "quest", "infinigen")


def build_clusterkv_config(
    scale: ContextScale = DEFAULT_SCALE,
    distance_metric: str = "cosine",
    tokens_per_cluster: int | None = None,
    cache_history: int = 1,
) -> ClusterKVConfig:
    """ClusterKV configuration at simulation scale.

    The paper's constants are ``tokens_per_cluster = 80``, ``m = 320`` and
    ``C+ = 4`` at 32k-token scale; lengths scale down with the context
    scale, while per-cluster token counts keep their ratio to the context.
    """
    if tokens_per_cluster is None:
        tokens_per_cluster = max(4, 80 // max(1, scale.factor // 4))
    return ClusterKVConfig(
        tokens_per_cluster=tokens_per_cluster,
        decode_window=max(4, scale.length(320)),
        decode_clusters=2 if scale.factor > 4 else 4,
        num_sink_tokens=scale.sink_tokens(),
        distance_metric=distance_metric,
        cache_history=cache_history,
    )


def build_selector(
    name: str,
    scale: ContextScale = DEFAULT_SCALE,
    clusterkv_config: ClusterKVConfig | None = None,
) -> KVSelectorFactory:
    """Instantiate a selector factory by method name."""
    if name == "full":
        return FullKVSelector()
    if name == "clusterkv":
        return ClusterKVSelector(clusterkv_config or build_clusterkv_config(scale))
    if name == "quest":
        # Page size 16 is Quest's algorithmic constant and is not scaled.
        return QuestSelector(QuestConfig(page_size=16))
    if name == "infinigen":
        return InfiniGenSelector(InfiniGenConfig())
    if name == "h2o":
        return H2OSelector()
    if name == "streaming_llm":
        return StreamingLLMSelector()
    if name == "oracle":
        return OracleTopKSelector()
    raise ValueError(f"unknown method {name!r}")
