"""Fig. 12: inference latency of ClusterKV vs. the full KV cache.

The paper measures end-to-end latency on Llama-3.1-8B with prompt lengths of
8k/16k/32k, decode lengths of 256/512/1024 and ClusterKV budgets of
512/1024/2048, reporting up to a 2x latency speedup and a 2.5x decoding
throughput improvement at 32k, with the prefill-time clustering overhead
staying within a few percent of prefill.  The reproduction evaluates the
same grid with the analytical performance model at the paper's true scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..model import get_reference_architecture
from ..perfmodel import ADA_6000, HardwareConfig, LatencyModel, LatencyReport
from .reporting import format_table

__all__ = ["Fig12Config", "Fig12Result", "run_fig12", "format_fig12"]


@dataclass(frozen=True)
class Fig12Config:
    """Configuration of the Fig. 12 reproduction (paper-scale settings)."""

    architecture: str = "llama-3.1-8b"
    prompt_lengths: tuple[int, ...] = (8192, 16384, 32768)
    decode_lengths: tuple[int, ...] = (256, 512, 1024)
    budgets: tuple[int, ...] = (512, 1024, 2048)
    cache_hit_rate: float = 0.63
    hardware: HardwareConfig = ADA_6000


@dataclass
class Fig12Result:
    """Latency reports keyed by (prompt, decode, configuration)."""

    reports: dict[tuple[int, int, str], LatencyReport] = field(default_factory=dict)
    config: Fig12Config | None = None

    def speedup(self, prompt: int, decode: int, budget: int) -> float:
        """Total-latency speedup of ClusterKV over the full KV cache."""
        full = self.reports[(prompt, decode, "full")]
        clusterkv = self.reports[(prompt, decode, f"budget={budget}")]
        return clusterkv.speedup_over(full)

    def throughput_ratio(self, prompt: int, decode: int, budget: int) -> float:
        """Decoding-throughput ratio of ClusterKV over the full KV cache."""
        full = self.reports[(prompt, decode, "full")]
        clusterkv = self.reports[(prompt, decode, f"budget={budget}")]
        if full.decode_throughput == 0:
            return 0.0
        return clusterkv.decode_throughput / full.decode_throughput

    def prefill_overhead_fraction(self, prompt: int, decode: int, budget: int) -> float:
        """Clustering overhead as a fraction of ClusterKV's prefill time."""
        report = self.reports[(prompt, decode, f"budget={budget}")]
        total_prefill = report.prefill_seconds + report.prefill_build_seconds
        if total_prefill == 0:
            return 0.0
        return report.prefill_build_seconds / total_prefill


def run_fig12(config: Fig12Config | None = None) -> Fig12Result:
    """Evaluate the Fig. 12 latency grid."""
    config = config or Fig12Config()
    arch = get_reference_architecture(config.architecture)
    model = LatencyModel(arch, config.hardware)
    result = Fig12Result(config=config)
    for prompt in config.prompt_lengths:
        for decode in config.decode_lengths:
            result.reports[(prompt, decode, "full")] = model.generation_latency(
                "full", prompt, decode
            )
            for budget in config.budgets:
                result.reports[(prompt, decode, f"budget={budget}")] = (
                    model.generation_latency(
                        "clusterkv",
                        prompt,
                        decode,
                        budget=budget,
                        cache_hit_rate=config.cache_hit_rate,
                    )
                )
    return result


def format_fig12(result: Fig12Result) -> str:
    """Format the latency grid like the paper's grouped bars."""
    config = result.config or Fig12Config()
    headers = ["P", "D", "full (s)"] + [f"B={budget} (s)" for budget in config.budgets] + [
        "best speedup",
        "best thr. ratio",
        "prefill overhead",
    ]
    rows = []
    for prompt in config.prompt_lengths:
        for decode in config.decode_lengths:
            full = result.reports[(prompt, decode, "full")]
            budget_latencies = [
                result.reports[(prompt, decode, f"budget={budget}")].total_seconds
                for budget in config.budgets
            ]
            speedups = [
                result.speedup(prompt, decode, budget) for budget in config.budgets
            ]
            ratios = [
                result.throughput_ratio(prompt, decode, budget)
                for budget in config.budgets
            ]
            overhead = result.prefill_overhead_fraction(
                prompt, decode, config.budgets[0]
            )
            rows.append(
                [prompt, decode, full.total_seconds]
                + budget_latencies
                + [max(speedups), max(ratios), f"{100 * overhead:.1f}%"]
            )
    return format_table(headers, rows, title="[Fig. 12] latency vs. full KV (Llama-3.1-8B scale)")
