"""Table I: average score over the eight LongBench-analogue tasks per budget.

The paper's Table I averages the Fig. 9 scores across the eight datasets for
every method and budget; ClusterKV improves over Quest and InfiniGen at
every budget and approaches the full-KV score with 1k–2k budgets.
"""

from __future__ import annotations

from dataclasses import dataclass

from .fig9_longbench import Fig9Config, Fig9Result, run_fig9
from .reporting import format_table

__all__ = ["Table1Result", "run_table1", "format_table1"]

# Paper Table I values (average score over the eight datasets).
PAPER_TABLE1 = {
    "quest": {256: 35.63, 512: 40.83, 1024: 43.23, 2048: 45.59},
    "infinigen": {256: 43.69, 512: 45.04, 1024: 45.13, 2048: 45.14},
    "clusterkv": {256: 46.69, 512: 48.02, 1024: 48.34, 2048: 48.70},
    "full": {256: 49.01, 512: 49.01, 1024: 49.01, 2048: 49.01},
}


@dataclass
class Table1Result:
    """Average scores per method and budget (0–100 scale)."""

    averages: dict[str, dict[int, float]]
    fig9: Fig9Result


def run_table1(config: Fig9Config | None = None, fig9: Fig9Result | None = None) -> Table1Result:
    """Compute Table I, reusing a Fig. 9 result when provided."""
    fig9 = fig9 if fig9 is not None else run_fig9(config)
    averages = {
        method: {
            budget: 100.0 * score
            for budget, score in fig9.table.average_by_budget(method).items()
        }
        for method in fig9.table.methods()
    }
    return Table1Result(averages=averages, fig9=fig9)


def format_table1(result: Table1Result, include_paper: bool = True) -> str:
    """Format Table I (and optionally the paper's reference values)."""
    budgets = sorted({budget for scores in result.averages.values() for budget in scores})
    headers = ["method"] + [f"B={budget}" for budget in budgets]
    rows = []
    for method, scores in sorted(result.averages.items()):
        rows.append([method] + [scores.get(budget, float("nan")) for budget in budgets])
    text = format_table(headers, rows, title="[Table I] average score across tasks (measured)")
    if include_paper:
        paper_rows = []
        for method, scores in PAPER_TABLE1.items():
            paper_rows.append([method] + [scores.get(budget, float("nan")) for budget in budgets])
        text += "\n\n" + format_table(
            headers, paper_rows, title="[Table I] paper-reported values (GLM4-9B, LongBench)"
        )
    return text
