"""Caching effectiveness study (paper Sec. V-C).

The paper measures the hit rate of ClusterKV's cluster-granularity cache on
a 32k-token NarrativeQA sample (63 % for ``R = 1`` and 74 % for ``R = 2``)
and the decoding-throughput improvement over loading every selected token
directly from CPU memory (2.3x and 3x).  The reproduction measures the hit
rates with the actual simulation and feeds them into the performance model
to obtain the throughput improvement at the paper's true scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core import ClusterKVSelector
from ..model import get_reference_architecture
from ..perfmodel import ADA_6000, HardwareConfig, LatencyModel
from ..workloads import LONGBENCH_TASKS, LongBenchTaskGenerator
from .methods import build_clusterkv_config
from .reporting import format_table
from .runner import EvaluationContext, evaluate_sample
from .scale import ContextScale, DEFAULT_SCALE

__all__ = ["CacheStudyConfig", "CacheStudyResult", "run_cache_study", "format_cache_study"]


@dataclass(frozen=True)
class CacheStudyConfig:
    """Configuration of the caching study."""

    cache_histories: tuple[int, ...] = (1, 2)
    paper_context: int = 32768
    paper_budget: int = 1024
    decode_steps: int = 24
    num_samples: int = 1
    task: str = "narrativeqa"
    scale: ContextScale = DEFAULT_SCALE
    model_name: str = "glm-sim"
    architecture: str = "llama-3.1-8b"
    hardware: HardwareConfig = ADA_6000
    seed: int = 0


@dataclass
class CacheStudyResult:
    """Measured hit rates and modelled throughput improvements.

    ``throughput_gain`` uses the hit rate measured by the simulation;
    ``throughput_gain_paper_hit`` uses the hit rate the paper reports for
    the same ``R`` (the synthetic model's queries change faster between
    decoding steps than a trained LLM's, which depresses the measured hit
    rate — see EXPERIMENTS.md).
    """

    hit_rates: dict[int, float] = field(default_factory=dict)
    throughput_gain: dict[int, float] = field(default_factory=dict)
    throughput_gain_paper_hit: dict[int, float] = field(default_factory=dict)
    config: CacheStudyConfig | None = None


PAPER_HIT_RATES = {1: 0.63, 2: 0.74}
PAPER_THROUGHPUT_GAINS = {1: 2.3, 2: 3.0}


def run_cache_study(config: CacheStudyConfig | None = None) -> CacheStudyResult:
    """Measure cache hit rates and derive the throughput improvement."""
    config = config or CacheStudyConfig()
    context = EvaluationContext.create(config.model_name, config.scale, config.seed)
    spec = LONGBENCH_TASKS[config.task]
    generator = LongBenchTaskGenerator(
        context.tokenizer, spec, topic_model=context.topic_model, seed=config.seed
    )
    scaled_context = config.scale.length(config.paper_context)
    scaled_budget = config.scale.length(config.paper_budget)
    samples = generator.generate_dataset(scaled_context, config.num_samples)
    for sample in samples:
        sample.answer_length = max(sample.answer_length, config.decode_steps)

    arch = get_reference_architecture(config.architecture)
    latency_model = LatencyModel(arch, config.hardware)
    no_cache_step = latency_model.decode_step(
        "clusterkv",
        config.paper_context,
        config.paper_budget,
        cache_hit_rate=0.0,
        cluster_cache_enabled=False,
    )

    result = CacheStudyResult(config=config)
    for history in config.cache_histories:
        clusterkv_config = build_clusterkv_config(config.scale, cache_history=history)
        hit_rates = []
        for sample in samples:
            selector = ClusterKVSelector(clusterkv_config)
            _, generation = evaluate_sample(
                context, selector, sample, scaled_budget, num_full_layers=2
            )
            hit_rates.append(generation.cache_hit_rate)
        hit_rate = float(np.mean(hit_rates))
        result.hit_rates[history] = hit_rate

        cached_step = latency_model.decode_step(
            "clusterkv",
            config.paper_context,
            config.paper_budget,
            cache_hit_rate=hit_rate,
            cluster_cache_enabled=True,
        )
        result.throughput_gain[history] = no_cache_step["total"] / cached_step["total"]
        paper_step = latency_model.decode_step(
            "clusterkv",
            config.paper_context,
            config.paper_budget,
            cache_hit_rate=PAPER_HIT_RATES.get(history, hit_rate),
            cluster_cache_enabled=True,
        )
        result.throughput_gain_paper_hit[history] = (
            no_cache_step["total"] / paper_step["total"]
        )
    return result


def format_cache_study(result: CacheStudyResult) -> str:
    """Format the caching study like the paper's Sec. V-C summary."""
    headers = [
        "R",
        "hit rate (measured)",
        "paper hit rate",
        "gain (measured hit)",
        "gain (paper hit)",
        "paper gain",
    ]
    rows = []
    for history in sorted(result.hit_rates):
        rows.append(
            [
                history,
                f"{100 * result.hit_rates[history]:.1f}%",
                f"{100 * PAPER_HIT_RATES.get(history, float('nan')):.0f}%",
                f"{result.throughput_gain[history]:.2f}x",
                f"{result.throughput_gain_paper_hit.get(history, float('nan')):.2f}x",
                f"{PAPER_THROUGHPUT_GAINS.get(history, float('nan')):.1f}x",
            ]
        )
    return format_table(headers, rows, title="[Sec. V-C] cluster-cache effectiveness")
