"""Design-choice ablations of ClusterKV beyond the paper's Fig. 11b.

DESIGN.md §5 lists the design decisions of the system (attention sinks,
budget trimming policy, cluster-cache depth ``R``, decode-time clustering
cadence).  This experiment quantifies each one on a single long QA sample:
for every variant it reports the task score, the recall of important tokens
and the cluster-cache hit rate, so the contribution of each mechanism is
visible in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..core import ClusterKVSelector
from ..metrics import mean_recall
from ..workloads import LONGBENCH_TASKS, LongBenchTaskGenerator
from .methods import build_clusterkv_config
from .reporting import format_table
from .runner import EvaluationContext, evaluate_sample
from .scale import ContextScale, DEFAULT_SCALE

__all__ = [
    "DesignAblationConfig",
    "DesignVariantResult",
    "DesignAblationResult",
    "run_design_ablation",
    "format_design_ablation",
]


@dataclass(frozen=True)
class DesignAblationConfig:
    """Configuration of the design-choice ablation."""

    task: str = "multifieldqa"
    paper_context: int = 32768
    paper_budget: int = 1024
    num_samples: int = 2
    decode_steps: int = 12
    scale: ContextScale = DEFAULT_SCALE
    model_name: str = "glm-sim"
    num_full_layers: int = 2
    seed: int = 0


@dataclass
class DesignVariantResult:
    """Metrics of one ClusterKV variant."""

    name: str
    score: float
    recall: float
    cache_hit_rate: float


@dataclass
class DesignAblationResult:
    """All variants, keyed by name."""

    variants: dict[str, DesignVariantResult] = field(default_factory=dict)
    config: DesignAblationConfig | None = None

    def score_of(self, name: str) -> float:
        """Aggregate score of the named design variant."""
        return self.variants[name].score


def _variants(config: DesignAblationConfig) -> dict[str, dict]:
    """Named ClusterKV configuration overrides for each ablated choice."""
    base = build_clusterkv_config(config.scale)
    return {
        "default": {},
        "no-sinks": {"num_sink_tokens": 0},
        "trim-centroid": {"trim_policy": "centroid"},
        "no-cache (R=0)": {"cache_history": 0},
        "cache R=2": {"cache_history": 2},
        "coarse clusters (2x)": {"tokens_per_cluster": base.tokens_per_cluster * 2},
        "fine clusters (x0.5)": {
            "tokens_per_cluster": max(2, base.tokens_per_cluster // 2)
        },
        "l2 distance": {"distance_metric": "l2"},
    }


def run_design_ablation(config: DesignAblationConfig | None = None) -> DesignAblationResult:
    """Evaluate every ClusterKV design variant on the same samples."""
    config = config or DesignAblationConfig()
    context = EvaluationContext.create(config.model_name, config.scale, config.seed)
    generator = LongBenchTaskGenerator(
        context.tokenizer,
        LONGBENCH_TASKS[config.task],
        topic_model=context.topic_model,
        seed=config.seed,
    )
    scaled_context = config.scale.length(config.paper_context)
    scaled_budget = config.scale.length(config.paper_budget)
    samples = generator.generate_dataset(scaled_context, config.num_samples)
    for sample in samples:
        sample.answer_length = max(sample.answer_length, config.decode_steps)

    base_config = build_clusterkv_config(config.scale)
    result = DesignAblationResult(config=config)
    for name, overrides in _variants(config).items():
        variant_config = replace(base_config, **overrides)
        scores, recalls, hit_rates = [], [], []
        for sample in samples:
            selector = ClusterKVSelector(variant_config)
            score, generation = evaluate_sample(
                context,
                selector,
                sample,
                scaled_budget,
                num_full_layers=config.num_full_layers,
                record_true_scores=True,
            )
            scores.append(score)
            recalls.append(mean_recall(generation.recall_records))
            hit_rates.append(generation.cache_hit_rate)
        result.variants[name] = DesignVariantResult(
            name=name,
            score=float(np.mean(scores)),
            recall=float(np.mean(recalls)),
            cache_hit_rate=float(np.mean(hit_rates)),
        )
    return result


def format_design_ablation(result: DesignAblationResult) -> str:
    """Format the ablation as one row per variant."""
    headers = ["variant", "task score", "recall", "cache hit rate"]
    rows = []
    for name, variant in result.variants.items():
        rows.append(
            [name, 100.0 * variant.score, variant.recall, f"{100 * variant.cache_hit_rate:.1f}%"]
        )
    return format_table(headers, rows, title="[Design ablation] ClusterKV variants")
