"""Context scaling between paper-scale and simulation-scale settings.

The paper's accuracy experiments run 8k–32k-token contexts through 8–9 B
parameter models on a GPU.  The NumPy substrate runs small models on a CPU,
so the accuracy experiments shrink every length-like quantity (context
length, KV budget, attention sinks, clustering cadence) by a common factor
while preserving the ratios that drive the results — budget/context,
tokens-per-cluster, page size is deliberately *not* scaled (Quest's page
size of 16 is an algorithmic constant, and keeping it preserves the
fragmentation behaviour the paper analyses).

The efficiency experiments (Fig. 12/13) do not use this scaling at all: the
analytical performance model works directly at the paper's true scale.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ContextScale", "DEFAULT_SCALE"]


@dataclass(frozen=True)
class ContextScale:
    """Linear down-scaling of length-like quantities.

    Attributes
    ----------
    factor:
        Division factor applied to paper-scale lengths (16 maps a 32k
        context to 2k simulated tokens).
    """

    factor: int = 16

    def __post_init__(self) -> None:
        if self.factor < 1:
            raise ValueError("factor must be at least 1")

    def length(self, paper_tokens: int, minimum: int = 1) -> int:
        """Scale a context length or budget expressed in paper tokens."""
        if paper_tokens <= 0:
            raise ValueError("paper_tokens must be positive")
        return max(minimum, paper_tokens // self.factor)

    def sink_tokens(self, paper_sinks: int = 16) -> int:
        """Scaled number of attention-sink tokens (at least 2)."""
        return max(2, paper_sinks // max(1, self.factor // 4))

    def describe(self, paper_tokens: int) -> str:
        """Human-readable label like ``"2048 (paper 32768)"``."""
        return f"{self.length(paper_tokens)} (paper {paper_tokens})"


DEFAULT_SCALE = ContextScale(factor=16)
