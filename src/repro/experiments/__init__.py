"""Experiment harness: one module per table/figure of the paper.

Every module exposes a frozen ``*Config`` dataclass with CPU-friendly
defaults, a ``run_*`` function returning a structured result, and a
``format_*`` function rendering the result as a plain-text table — the same
rows/series the paper reports.  The benchmark harness under ``benchmarks/``
regenerates each one.
"""

from .ablation_design import (
    DesignAblationConfig,
    DesignAblationResult,
    DesignVariantResult,
    format_design_ablation,
    run_design_ablation,
)
from .cache_study import (
    CacheStudyConfig,
    CacheStudyResult,
    format_cache_study,
    run_cache_study,
)
from .fig3_motivation import Fig3Config, Fig3Result, format_fig3, run_fig3
from .fig9_longbench import Fig9Config, Fig9Result, format_fig9, run_fig9
from .fig10_perplexity import Fig10Config, Fig10Result, format_fig10, run_fig10
from .fig11_recall import (
    Fig11Config,
    Fig11Result,
    format_fig11,
    run_fig11_ablation,
    run_fig11_methods,
)
from .fig12_latency import Fig12Config, Fig12Result, format_fig12, run_fig12
from .fig13_sota import (
    Fig13Config,
    Fig13Result,
    format_fig13,
    run_fig13_infinigen,
    run_fig13_quest,
)
from .methods import (
    ACCURACY_METHODS,
    build_clusterkv_config,
    build_selector,
    build_selector_spec,
)
from .reporting import format_kv, format_series, format_table
from .runner import EvaluationContext, evaluate_sample, score_prediction
from .scale import DEFAULT_SCALE, ContextScale
from .table1_average import (
    PAPER_TABLE1,
    Table1Result,
    format_table1,
    run_table1,
)

__all__ = [
    "ContextScale",
    "DEFAULT_SCALE",
    "EvaluationContext",
    "evaluate_sample",
    "score_prediction",
    "ACCURACY_METHODS",
    "build_selector",
    "build_selector_spec",
    "build_clusterkv_config",
    "format_table",
    "format_series",
    "format_kv",
    "Fig3Config",
    "Fig3Result",
    "run_fig3",
    "format_fig3",
    "Fig9Config",
    "Fig9Result",
    "run_fig9",
    "format_fig9",
    "Table1Result",
    "PAPER_TABLE1",
    "run_table1",
    "format_table1",
    "Fig10Config",
    "Fig10Result",
    "run_fig10",
    "format_fig10",
    "Fig11Config",
    "Fig11Result",
    "run_fig11_methods",
    "run_fig11_ablation",
    "format_fig11",
    "Fig12Config",
    "Fig12Result",
    "run_fig12",
    "format_fig12",
    "Fig13Config",
    "Fig13Result",
    "run_fig13_infinigen",
    "run_fig13_quest",
    "format_fig13",
    "CacheStudyConfig",
    "CacheStudyResult",
    "run_cache_study",
    "format_cache_study",
    "DesignAblationConfig",
    "DesignAblationResult",
    "DesignVariantResult",
    "run_design_ablation",
    "format_design_ablation",
]
