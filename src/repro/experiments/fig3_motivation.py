"""Fig. 3: motivation analyses.

Part (a) shows that token importance (attention-weight ranking) fluctuates
strongly across decoding steps, which is why non-recallable eviction loses
accuracy.  Part (b) shows that the truly important tokens are scattered so
that fixed pages of 16 tokens contain only one or two of them (internal
fragmentation of page-granularity recall).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis import (
    FragmentationStats,
    ImportanceTrace,
    analyse_page_fragmentation,
    track_token_importance,
)
from ..baselines import FullKVSelector
from ..model import GenerationConfig, InferenceEngine
from ..workloads import LONGBENCH_TASKS, LongBenchTaskGenerator
from .reporting import format_kv
from .runner import EvaluationContext
from .scale import ContextScale, DEFAULT_SCALE

__all__ = ["Fig3Config", "Fig3Result", "run_fig3", "format_fig3"]


@dataclass(frozen=True)
class Fig3Config:
    """Configuration of the Fig. 3 reproduction."""

    paper_context: int = 8192
    decode_steps: int = 48
    num_tracked_tokens: int = 3
    page_size: int = 16
    top_k_fraction: float = 0.03
    task: str = "narrativeqa"
    scale: ContextScale = DEFAULT_SCALE
    model_name: str = "llama-sim"
    seed: int = 0


@dataclass
class Fig3Result:
    """Importance-fluctuation trace and page-fragmentation statistics."""

    importance: ImportanceTrace
    fragmentation: FragmentationStats
    context_length: int
    config: Fig3Config | None = None

    @property
    def mean_rank_variation(self) -> float:
        """Average rank range of the tracked tokens (Fig. 3a fluctuation)."""
        return float(np.mean(self.importance.rank_variation()))


def run_fig3(config: Fig3Config | None = None) -> Fig3Result:
    """Run both motivation analyses on one long sample."""
    config = config or Fig3Config()
    context = EvaluationContext.create(config.model_name, config.scale, config.seed)
    spec = LONGBENCH_TASKS[config.task]
    generator = LongBenchTaskGenerator(
        context.tokenizer, spec, topic_model=context.topic_model, seed=config.seed
    )
    scaled_context = config.scale.length(config.paper_context)
    sample = generator.generate_sample(scaled_context)

    # Track tokens spread across the context (mirroring the paper's choice of
    # tokens at different depths, e.g. 2048/3200/7168 in an 8k context).
    prompt_length = sample.prompt_length
    positions = np.linspace(prompt_length // 4, prompt_length - 8, config.num_tracked_tokens)
    positions = positions.astype(np.int64)

    importance = track_token_importance(
        context.model,
        sample.prompt_ids,
        positions,
        num_steps=config.decode_steps,
        num_sink_tokens=config.scale.sink_tokens(),
    )

    # Fragmentation: exact attention scores recorded during a full-KV run.
    generation_config = GenerationConfig(
        budget=None,
        max_new_tokens=config.decode_steps,
        num_full_layers=0,
        num_sink_tokens=config.scale.sink_tokens(),
        record_attention_trace=True,
    )
    engine = InferenceEngine(context.model, FullKVSelector(), generation_config)
    result = engine.generate(sample.prompt_ids)
    score_vectors = [
        record.true_scores[0]
        for record in result.attention_trace
        if record.true_scores is not None
    ]
    top_k = max(8, int(prompt_length * config.top_k_fraction))
    fragmentation = analyse_page_fragmentation(score_vectors, top_k, config.page_size)

    return Fig3Result(
        importance=importance,
        fragmentation=fragmentation,
        context_length=scaled_context,
        config=config,
    )


def format_fig3(result: Fig3Result) -> str:
    """Format the motivation analyses."""
    importance = format_kv(
        {
            "tracked tokens": list(result.importance.token_positions),
            "decode steps": result.importance.num_steps,
            "mean rank variation": result.mean_rank_variation,
            "max rank variation": int(result.importance.rank_variation().max()),
        },
        title="[Fig. 3a] token-importance fluctuation across decoding steps",
    )
    frag = result.fragmentation
    fragmentation = format_kv(
        {
            "page size": frag.page_size,
            "important tokens tracked": frag.top_k,
            "important tokens per occupied page": frag.important_per_occupied_page,
            "tokens loaded per important token": frag.waste_factor,
            "context fraction needed (page granularity)": frag.pages_needed_fraction,
        },
        title="[Fig. 3b] internal fragmentation of important tokens in pages",
    )
    return importance + "\n" + fragmentation
