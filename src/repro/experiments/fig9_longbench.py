"""Fig. 9: LongBench-analogue scores of every method under every budget.

The paper evaluates Quest, InfiniGen, ClusterKV and the full KV cache on
eight LongBench datasets under KV budgets of 256–2048 tokens (on 32k-token
contexts) and reports one score curve per dataset.  This experiment runs the
synthetic analogue of each dataset under the corresponding scaled budgets
and produces the same method × budget × task score table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..metrics import ScoreTable
from ..workloads import LONGBENCH_TASKS, LongBenchTaskGenerator
from .methods import ACCURACY_METHODS, build_selector
from .reporting import format_table
from .runner import EvaluationContext, evaluate_sample
from .scale import ContextScale, DEFAULT_SCALE

__all__ = ["Fig9Config", "Fig9Result", "run_fig9", "format_fig9"]

# Budgets reported by the paper (tokens at 32k-context scale).
PAPER_BUDGETS = (256, 512, 1024, 2048)
PAPER_CONTEXT = 32768


@dataclass(frozen=True)
class Fig9Config:
    """Configuration of the Fig. 9 reproduction.

    Defaults are sized for a CPU run of a few minutes; larger values
    reproduce the trends with less sampling noise.
    """

    tasks: tuple[str, ...] = tuple(LONGBENCH_TASKS)
    methods: tuple[str, ...] = ACCURACY_METHODS
    paper_budgets: tuple[int, ...] = PAPER_BUDGETS
    paper_context: int = PAPER_CONTEXT
    num_samples: int = 4
    scale: ContextScale = DEFAULT_SCALE
    model_name: str = "glm-sim"
    num_full_layers: int = 2
    seed: int = 0


@dataclass
class Fig9Result:
    """Score table plus the scaled settings used to produce it."""

    table: ScoreTable
    budgets: dict[int, int] = field(default_factory=dict)  # paper budget -> scaled
    context_length: int = 0
    config: Fig9Config | None = None


def run_fig9(config: Fig9Config | None = None) -> Fig9Result:
    """Run the Fig. 9 experiment and return the score table."""
    config = config or Fig9Config()
    context = EvaluationContext.create(config.model_name, config.scale, config.seed)
    scaled_context = config.scale.length(config.paper_context)
    scaled_budgets = {
        paper: config.scale.length(paper) for paper in config.paper_budgets
    }

    table = ScoreTable()
    for task_name in config.tasks:
        spec = LONGBENCH_TASKS[task_name]
        generator = LongBenchTaskGenerator(
            context.tokenizer, spec, topic_model=context.topic_model, seed=config.seed
        )
        samples = generator.generate_dataset(scaled_context, config.num_samples)
        for method in config.methods:
            for paper_budget, scaled_budget in scaled_budgets.items():
                budget = None if method == "full" else scaled_budget
                scores = []
                for sample in samples:
                    selector = build_selector(method, config.scale)
                    score, _ = evaluate_sample(
                        context,
                        selector,
                        sample,
                        budget,
                        num_full_layers=config.num_full_layers,
                    )
                    scores.append(score)
                table.record(method, paper_budget, task_name, float(np.mean(scores)))
    return Fig9Result(
        table=table,
        budgets=scaled_budgets,
        context_length=scaled_context,
        config=config,
    )


def format_fig9(result: Fig9Result) -> str:
    """Format the Fig. 9 result as one table per task (scores are 0–100)."""
    blocks = []
    table = result.table
    budgets = table.budgets()
    for task in table.tasks():
        headers = ["method"] + [
            f"B={budget} ({result.budgets.get(budget, budget)} sim)" for budget in budgets
        ]
        rows = []
        for method in table.methods():
            curve = table.task_curve(method, task)
            rows.append(
                [method] + [100.0 * curve.get(budget, float("nan")) for budget in budgets]
            )
        blocks.append(format_table(headers, rows, title=f"[Fig. 9] {task}"))
    return "\n\n".join(blocks)
