"""Fig. 10: language-modelling perplexity under a fixed KV budget.

The paper evaluates perplexity on PG19 with input lengths from 1 to 32 000
tokens and a uniform KV budget of 1024; ClusterKV stays within ~0.5 of the
full-KV perplexity while Quest and InfiniGen deviate by roughly 4 and 2.
The reproduction scores the synthetic PG19-analogue corpus: the first part
of every document is processed as the prompt and the remainder is
teacher-forced through the decoding path, so KV compression affects the
predictions exactly as it would during generation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..model import GenerationConfig, InferenceEngine
from ..workloads import PG19Config, PG19Generator
from .methods import ACCURACY_METHODS, build_selector
from .reporting import format_table
from .runner import EvaluationContext
from .scale import ContextScale, DEFAULT_SCALE

__all__ = ["Fig10Config", "Fig10Result", "run_fig10", "format_fig10"]

PAPER_BUDGET = 1024
# Input lengths the paper sweeps (paper-scale tokens).
PAPER_LENGTHS = (4000, 8000, 16000, 24000, 32000)


@dataclass(frozen=True)
class Fig10Config:
    """Configuration of the Fig. 10 reproduction."""

    methods: tuple[str, ...] = ACCURACY_METHODS
    paper_lengths: tuple[int, ...] = PAPER_LENGTHS
    paper_budget: int = PAPER_BUDGET
    num_samples: int = 2
    scored_tokens: int = 48
    scale: ContextScale = DEFAULT_SCALE
    model_name: str = "glm-sim"
    num_full_layers: int = 2
    seed: int = 0


@dataclass
class Fig10Result:
    """Perplexity per method and input length."""

    perplexities: dict[str, dict[int, float]] = field(default_factory=dict)
    budget: int = 0
    config: Fig10Config | None = None

    def deviation_from_full(self, method: str) -> float:
        """Mean perplexity deviation of a method from the full-KV curve."""
        full = self.perplexities.get("full", {})
        other = self.perplexities.get(method, {})
        common = sorted(set(full) & set(other))
        if not common:
            return float("nan")
        return float(np.mean([other[length] - full[length] for length in common]))


def run_fig10(config: Fig10Config | None = None) -> Fig10Result:
    """Run the perplexity sweep and return per-method curves."""
    config = config or Fig10Config()
    context = EvaluationContext.create(config.model_name, config.scale, config.seed)
    generator = PG19Generator(
        context.tokenizer, PG19Config(), topic_model=context.topic_model, seed=config.seed
    )
    scaled_budget = config.scale.length(config.paper_budget)

    result = Fig10Result(budget=scaled_budget, config=config)
    for paper_length in config.paper_lengths:
        scaled_length = config.scale.length(paper_length)
        total_length = scaled_length + config.scored_tokens
        samples = generator.generate_dataset(total_length, config.num_samples)
        for method in config.methods:
            budget = None if method == "full" else scaled_budget
            logprob_means = []
            for sample in samples:
                selector = build_selector(method, config.scale)
                generation_config = GenerationConfig(
                    budget=budget,
                    max_new_tokens=1,
                    num_full_layers=config.num_full_layers,
                    num_sink_tokens=config.scale.sink_tokens(),
                )
                engine = InferenceEngine(context.model, selector, generation_config)
                scored = engine.score_sequence(sample.token_ids, scaled_length)
                logprob_means.append(float(np.mean(scored.target_logprobs)))
            perplexity = float(np.exp(-np.mean(logprob_means)))
            result.perplexities.setdefault(method, {})[paper_length] = perplexity
    return result


def format_fig10(result: Fig10Result) -> str:
    """Format the perplexity curves as a table."""
    lengths = sorted(
        {length for curve in result.perplexities.values() for length in curve}
    )
    headers = ["method"] + [f"L={length}" for length in lengths] + ["dev. vs full"]
    rows = []
    for method, curve in sorted(result.perplexities.items()):
        rows.append(
            [method]
            + [curve.get(length, float("nan")) for length in lengths]
            + [result.deviation_from_full(method)]
        )
    return format_table(
        headers, rows, title=f"[Fig. 10] perplexity (budget {result.budget} sim tokens)"
    )
