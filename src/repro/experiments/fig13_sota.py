"""Fig. 13: latency comparison with state-of-the-art recallable methods.

Part (a) compares ClusterKV with InfiniGen on an OPT-6.7B-class model with a
2k-token prompt and a budget of 256 tokens (the paper reports an average
speedup of about 2.3x, with InfiniGen's latency close to full-KV inference
because of its per-token selection cost).  Part (b) compares ClusterKV with
Quest on a Llama-3.1-8B-class model with a 1k budget, where the two methods
are within a few percent of each other while ClusterKV delivers much higher
accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..model import get_reference_architecture
from ..perfmodel import ADA_6000, HardwareConfig, LatencyModel, LatencyReport
from .reporting import format_table

__all__ = [
    "Fig13Config",
    "Fig13Result",
    "run_fig13_infinigen",
    "run_fig13_quest",
    "format_fig13",
]


@dataclass(frozen=True)
class Fig13Config:
    """Configuration of the Fig. 13 reproduction (paper-scale settings)."""

    # Part (a): vs. InfiniGen on OPT-6.7B.
    infinigen_architecture: str = "opt-6.7b"
    infinigen_prompt: int = 2048
    infinigen_decodes: tuple[int, ...] = (128, 256)
    infinigen_budget: int = 256
    # Part (b): vs. Quest on Llama-3.1-8B.
    quest_architecture: str = "llama-3.1-8b"
    quest_prompts: tuple[int, ...] = (8192, 16384, 32768)
    quest_decodes: tuple[int, ...] = (256, 512)
    quest_budget: int = 1024
    cache_hit_rate: float = 0.63
    hardware: HardwareConfig = ADA_6000


@dataclass
class Fig13Result:
    """Latency reports keyed by (setting label, method)."""

    reports: dict[tuple[str, str], LatencyReport] = field(default_factory=dict)
    config: Fig13Config | None = None

    def speedup(self, setting: str, baseline: str, method: str = "clusterkv") -> float:
        """Total-latency speedup of ``method`` over ``baseline`` in a setting."""
        return self.reports[(setting, method)].speedup_over(
            self.reports[(setting, baseline)]
        )

    def mean_speedup(self, baseline: str) -> float:
        """Average speedup over all settings containing the baseline."""
        speedups = [
            self.speedup(setting, baseline)
            for (setting, method) in self.reports
            if method == baseline
        ]
        return sum(speedups) / len(speedups) if speedups else 0.0

    def max_deviation(self, baseline: str) -> float:
        """Largest relative latency deviation of ClusterKV from ``baseline``."""
        deviations = []
        for (setting, method) in list(self.reports):
            if method != baseline:
                continue
            base = self.reports[(setting, baseline)].total_seconds
            ours = self.reports[(setting, "clusterkv")].total_seconds
            deviations.append(abs(ours - base) / base)
        return max(deviations) if deviations else 0.0


def run_fig13_infinigen(config: Fig13Config | None = None) -> Fig13Result:
    """Fig. 13a: ClusterKV vs. InfiniGen (and full KV) on OPT-6.7B scale."""
    config = config or Fig13Config()
    arch = get_reference_architecture(config.infinigen_architecture)
    model = LatencyModel(arch, config.hardware)
    result = Fig13Result(config=config)
    for decode in config.infinigen_decodes:
        setting = f"P={config.infinigen_prompt},D={decode}"
        result.reports[(setting, "full")] = model.generation_latency(
            "full", config.infinigen_prompt, decode
        )
        result.reports[(setting, "infinigen")] = model.generation_latency(
            "infinigen", config.infinigen_prompt, decode, budget=config.infinigen_budget
        )
        result.reports[(setting, "clusterkv")] = model.generation_latency(
            "clusterkv",
            config.infinigen_prompt,
            decode,
            budget=config.infinigen_budget,
            cache_hit_rate=config.cache_hit_rate,
        )
    return result


def run_fig13_quest(config: Fig13Config | None = None) -> Fig13Result:
    """Fig. 13b: ClusterKV vs. Quest on Llama-3.1-8B scale."""
    config = config or Fig13Config()
    arch = get_reference_architecture(config.quest_architecture)
    model = LatencyModel(arch, config.hardware)
    result = Fig13Result(config=config)
    for prompt in config.quest_prompts:
        for decode in config.quest_decodes:
            setting = f"P={prompt},D={decode}"
            result.reports[(setting, "quest")] = model.generation_latency(
                "quest", prompt, decode, budget=config.quest_budget
            )
            result.reports[(setting, "clusterkv")] = model.generation_latency(
                "clusterkv",
                prompt,
                decode,
                budget=config.quest_budget,
                cache_hit_rate=config.cache_hit_rate,
            )
    return result


def format_fig13(infinigen_result: Fig13Result, quest_result: Fig13Result) -> str:
    """Format both parts of Fig. 13."""
    settings_a = sorted({setting for setting, _ in infinigen_result.reports})
    rows_a = []
    for setting in settings_a:
        rows_a.append(
            [
                setting,
                infinigen_result.reports[(setting, "full")].total_seconds,
                infinigen_result.reports[(setting, "infinigen")].total_seconds,
                infinigen_result.reports[(setting, "clusterkv")].total_seconds,
                infinigen_result.speedup(setting, "infinigen"),
            ]
        )
    part_a = format_table(
        ["setting", "full (s)", "infinigen (s)", "clusterkv (s)", "speedup"],
        rows_a,
        title="[Fig. 13a] ClusterKV vs. InfiniGen (OPT-6.7B scale, budget 256)",
    )

    settings_b = sorted({setting for setting, _ in quest_result.reports})
    rows_b = []
    for setting in settings_b:
        quest = quest_result.reports[(setting, "quest")].total_seconds
        ours = quest_result.reports[(setting, "clusterkv")].total_seconds
        rows_b.append([setting, quest, ours, f"{100 * (ours - quest) / quest:+.1f}%"])
    part_b = format_table(
        ["setting", "quest (s)", "clusterkv (s)", "deviation"],
        rows_b,
        title="[Fig. 13b] ClusterKV vs. Quest (Llama-3.1-8B scale, budget 1k)",
    )
    return part_a + "\n\n" + part_b
