"""Shared evaluation runner used by the accuracy experiments."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines import KVSelectorFactory
from ..metrics import qa_f1_score, rouge_l_score
from ..model import (
    GenerationConfig,
    GenerationResult,
    InferenceEngine,
    SyntheticTokenizer,
    TransformerModel,
    get_model_config,
)
from ..workloads import LongBenchSample, TopicModel
from .scale import ContextScale, DEFAULT_SCALE

__all__ = ["EvaluationContext", "evaluate_sample", "score_prediction"]


@dataclass
class EvaluationContext:
    """Model, tokenizer and topic model shared by one experiment run.

    Building the transformer weights is deterministic but not free; the
    experiments create one context and reuse it across methods and budgets
    so that every method sees exactly the same model and data.
    """

    model: TransformerModel
    tokenizer: SyntheticTokenizer
    topic_model: TopicModel
    scale: ContextScale

    @classmethod
    def create(
        cls,
        model_name: str = "glm-sim",
        scale: ContextScale = DEFAULT_SCALE,
        seed: int = 0,
    ) -> "EvaluationContext":
        """Build the standard evaluation context used by the paper analogues."""
        config = get_model_config(model_name)
        model = TransformerModel(config)
        tokenizer = SyntheticTokenizer(config.vocab_size)
        topic_model = TopicModel(tokenizer, seed=seed)
        return cls(model=model, tokenizer=tokenizer, topic_model=topic_model, scale=scale)


def score_prediction(prediction: str, reference: str, metric: str) -> float:
    """Score a prediction with the metric the task specifies."""
    if metric == "f1":
        return qa_f1_score(prediction, reference)
    if metric == "rouge_l":
        return rouge_l_score(prediction, reference)
    raise ValueError(f"unknown metric {metric!r}")


def evaluate_sample(
    context: EvaluationContext,
    selector: KVSelectorFactory,
    sample: LongBenchSample,
    budget: int | None,
    num_full_layers: int = 2,
    record_true_scores: bool = False,
) -> tuple[float, GenerationResult]:
    """Generate an answer for one sample and score it.

    Returns the task-metric score and the full :class:`GenerationResult`
    (which carries selection statistics, cache hit rates and optional recall
    records for downstream experiments).
    """
    generation_config = GenerationConfig(
        budget=budget,
        max_new_tokens=sample.answer_length,
        num_full_layers=num_full_layers,
        num_sink_tokens=context.scale.sink_tokens(),
        record_true_scores=record_true_scores,
    )
    engine = InferenceEngine(context.model, selector, generation_config)
    result = engine.generate(np.asarray(sample.prompt_ids))
    prediction = context.tokenizer.decode(result.output_ids)
    score = score_prediction(prediction, sample.reference_answer, sample.metric)
    return score, result
