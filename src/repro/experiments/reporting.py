"""Plain-text table and series formatting for experiment reports."""

from __future__ import annotations

__all__ = ["format_table", "format_series", "format_kv"]


def format_table(
    headers: list[str], rows: list[list[object]], title: str | None = None
) -> str:
    """Render a list of rows as an aligned plain-text table."""
    if not headers:
        raise ValueError("headers must not be empty")
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match header length")
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))

    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(header.ljust(widths[idx]) for idx, header in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * width for width in widths))
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(widths[idx]) for idx, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(name: str, points: dict[object, float], precision: int = 3) -> str:
    """Render a named series (x -> y) on one line."""
    body = ", ".join(f"{x}: {y:.{precision}f}" for x, y in points.items())
    return f"{name}: {body}"


def format_kv(pairs: dict[str, object], title: str | None = None) -> str:
    """Render key/value pairs, one per line."""
    lines = [title] if title else []
    for key, value in pairs.items():
        lines.append(f"  {key}: {_fmt(value)}")
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
