"""Fig. 11: recall rate of important tokens.

The paper extracts a 32k-token NarrativeQA sample and measures, for every
method, the fraction of the truly important tokens (the top-``B`` by exact
attention score) that the method's selection recalls, averaged over layers,
heads and decoding steps.  Part (a) compares methods; part (b) ablates
ClusterKV's clustering distance metric (cosine vs. L2 vs. inner product) and
the number of prefill clusters ``C0``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core import ClusterKVConfig, ClusterKVSelector
from ..metrics import mean_recall
from ..workloads import LONGBENCH_TASKS, LongBenchTaskGenerator
from .methods import build_clusterkv_config, build_selector
from .reporting import format_series
from .runner import EvaluationContext, evaluate_sample
from .scale import ContextScale, DEFAULT_SCALE

__all__ = [
    "Fig11Config",
    "Fig11Result",
    "run_fig11_methods",
    "run_fig11_ablation",
    "format_fig11",
]

# Budgets swept by the paper: 256..2048 in increments of 256.
PAPER_BUDGETS = tuple(range(256, 2049, 256))
PAPER_CONTEXT = 32768


@dataclass(frozen=True)
class Fig11Config:
    """Configuration of the recall-rate experiments."""

    methods: tuple[str, ...] = ("clusterkv", "quest", "infinigen")
    paper_budgets: tuple[int, ...] = (256, 512, 1024, 1536, 2048)
    paper_context: int = PAPER_CONTEXT
    task: str = "narrativeqa"
    num_samples: int = 1
    decode_steps: int = 16
    scale: ContextScale = DEFAULT_SCALE
    model_name: str = "glm-sim"
    num_full_layers: int = 2
    seed: int = 0
    # Ablation settings (paper Fig. 11b).
    ablation_metrics: tuple[str, ...] = ("cosine", "l2", "ip")
    ablation_cluster_counts: tuple[int, ...] = (200, 400, 600, 800)


@dataclass
class Fig11Result:
    """Recall-rate curves keyed by series name then paper budget."""

    curves: dict[str, dict[int, float]] = field(default_factory=dict)
    context_length: int = 0
    config: Fig11Config | None = None

    def record(self, series: str, paper_budget: int, recall: float) -> None:
        """Store the recall of one (series, paper-scale budget) point."""
        self.curves.setdefault(series, {})[paper_budget] = recall


def _samples_for(config: Fig11Config, context: EvaluationContext) -> list:
    spec = LONGBENCH_TASKS[config.task]
    generator = LongBenchTaskGenerator(
        context.tokenizer, spec, topic_model=context.topic_model, seed=config.seed
    )
    scaled_context = config.scale.length(config.paper_context)
    samples = generator.generate_dataset(scaled_context, config.num_samples)
    # Lengthen the decode so that recall is averaged over enough steps.
    for sample in samples:
        sample.answer_length = max(sample.answer_length, config.decode_steps)
    return samples


def _recall_for_selector(
    config: Fig11Config,
    context: EvaluationContext,
    samples: list,
    selector_builder,
    paper_budget: int,
) -> float:
    scaled_budget = config.scale.length(paper_budget)
    recalls = []
    for sample in samples:
        selector = selector_builder()
        _, result = evaluate_sample(
            context,
            selector,
            sample,
            scaled_budget,
            num_full_layers=config.num_full_layers,
            record_true_scores=True,
        )
        recalls.append(mean_recall(result.recall_records))
    return float(np.mean(recalls))


def run_fig11_methods(config: Fig11Config | None = None) -> Fig11Result:
    """Fig. 11a: recall rate of each method across budgets."""
    config = config or Fig11Config()
    context = EvaluationContext.create(config.model_name, config.scale, config.seed)
    samples = _samples_for(config, context)
    result = Fig11Result(
        context_length=config.scale.length(config.paper_context), config=config
    )
    for method in config.methods:
        for paper_budget in config.paper_budgets:
            recall = _recall_for_selector(
                config,
                context,
                samples,
                lambda method=method: build_selector(method, config.scale),
                paper_budget,
            )
            result.record(method, paper_budget, recall)
    return result


def run_fig11_ablation(config: Fig11Config | None = None) -> Fig11Result:
    """Fig. 11b: ClusterKV ablation over distance metrics and cluster counts.

    The cluster-count ablation is expressed in paper-scale ``C0`` values
    (200–800 for a 32k context, i.e. 160 to 40 tokens per cluster); the
    distance-metric ablation keeps the paper's default ``C0 = L / 80``.
    """
    config = config or Fig11Config()
    context = EvaluationContext.create(config.model_name, config.scale, config.seed)
    samples = _samples_for(config, context)
    result = Fig11Result(
        context_length=config.scale.length(config.paper_context), config=config
    )

    for metric in config.ablation_metrics:
        for paper_budget in config.paper_budgets:
            recall = _recall_for_selector(
                config,
                context,
                samples,
                lambda metric=metric: ClusterKVSelector(
                    build_clusterkv_config(config.scale, distance_metric=metric)
                ),
                paper_budget,
            )
            result.record(f"metric={metric}", paper_budget, recall)

    scaled_context = config.scale.length(config.paper_context)
    for paper_c0 in config.ablation_cluster_counts:
        # C0 clusters over the paper's context correspond to one cluster per
        # ``context / C0`` tokens; keep that ratio at simulation scale.
        tokens_per_cluster = max(2, round(scaled_context / paper_c0))
        clusterkv_config = ClusterKVConfig(
            tokens_per_cluster=tokens_per_cluster,
            decode_window=max(4, config.scale.length(320)),
            decode_clusters=2,
            num_sink_tokens=config.scale.sink_tokens(),
        )
        for paper_budget in config.paper_budgets:
            recall = _recall_for_selector(
                config,
                context,
                samples,
                lambda cfg=clusterkv_config: ClusterKVSelector(cfg),
                paper_budget,
            )
            result.record(f"C0={paper_c0}", paper_budget, recall)
    return result


def format_fig11(result: Fig11Result, title: str = "[Fig. 11] recall rate") -> str:
    """Format recall curves, one series per line."""
    lines = [title + f" (context {result.context_length} sim tokens)"]
    for series, curve in result.curves.items():
        lines.append(format_series(series, dict(sorted(curve.items()))))
    return "\n".join(lines)
