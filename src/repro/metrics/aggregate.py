"""Score aggregation across tasks and budgets (paper Table I)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ScoreTable", "average_scores"]


def average_scores(scores: dict[str, float]) -> float:
    """Arithmetic mean of per-task scores (the paper's Table I aggregation)."""
    if not scores:
        raise ValueError("cannot average an empty score dictionary")
    return float(np.mean(list(scores.values())))


@dataclass
class ScoreTable:
    """Method × budget score table with task breakdowns.

    ``scores[method][budget][task]`` is the score of one method at one
    budget on one task.  Convenience accessors reproduce the aggregations
    the paper reports: per-task curves (Fig. 9) and per-budget averages
    (Table I).
    """

    scores: dict[str, dict[int, dict[str, float]]] = field(default_factory=dict)

    def record(self, method: str, budget: int, task: str, score: float) -> None:
        """Record one score."""
        self.scores.setdefault(method, {}).setdefault(budget, {})[task] = float(score)

    def tasks(self) -> list[str]:
        """All task names present in the table."""
        names: set[str] = set()
        for budgets in self.scores.values():
            for task_scores in budgets.values():
                names.update(task_scores)
        return sorted(names)

    def budgets(self) -> list[int]:
        """All budgets present in the table."""
        values: set[int] = set()
        for budgets in self.scores.values():
            values.update(budgets)
        return sorted(values)

    def methods(self) -> list[str]:
        """All methods present in the table."""
        return sorted(self.scores)

    def task_curve(self, method: str, task: str) -> dict[int, float]:
        """Score of one method on one task as a function of the budget."""
        curve = {}
        for budget, task_scores in self.scores.get(method, {}).items():
            if task in task_scores:
                curve[budget] = task_scores[task]
        return dict(sorted(curve.items()))

    def average_by_budget(self, method: str) -> dict[int, float]:
        """Average score across tasks per budget (one row of Table I)."""
        averages = {}
        for budget, task_scores in self.scores.get(method, {}).items():
            averages[budget] = average_scores(task_scores)
        return dict(sorted(averages.items()))

    def to_rows(self) -> list[dict[str, object]]:
        """Flatten the table into records (method, budget, task, score)."""
        rows = []
        for method, budgets in sorted(self.scores.items()):
            for budget, task_scores in sorted(budgets.items()):
                for task, score in sorted(task_scores.items()):
                    rows.append(
                        {"method": method, "budget": budget, "task": task, "score": score}
                    )
        return rows
