"""Perplexity computation from per-token log-probabilities."""

from __future__ import annotations

import numpy as np

__all__ = ["perplexity_from_logprobs"]


def perplexity_from_logprobs(logprobs: np.ndarray | list[float]) -> float:
    """Perplexity ``exp(-mean(logprob))`` of a token sequence.

    Raises
    ------
    ValueError
        If the list is empty or contains non-finite values.
    """
    logprobs = np.asarray(logprobs, dtype=np.float64)
    if logprobs.size == 0:
        raise ValueError("cannot compute perplexity of an empty sequence")
    if not np.all(np.isfinite(logprobs)):
        raise ValueError("log-probabilities must be finite")
    return float(np.exp(-np.mean(logprobs)))
