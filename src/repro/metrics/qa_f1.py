"""Token-level QA F1 score, as used by LongBench for most QA tasks."""

from __future__ import annotations

from collections import Counter

__all__ = ["normalize_answer", "qa_f1_score"]


def normalize_answer(text: str) -> list[str]:
    """Normalise an answer string into a list of comparison tokens.

    Lower-cases, strips punctuation-only tokens and splits on whitespace.
    The synthetic vocabulary has no articles, so no stop-word removal is
    needed; the function still removes empty tokens defensively.
    """
    tokens = []
    for raw in text.lower().split():
        token = "".join(ch for ch in raw if ch.isalnum())
        if token:
            tokens.append(token)
    return tokens


def qa_f1_score(prediction: str, reference: str) -> float:
    """F1 overlap between predicted and reference answer tokens.

    This is the standard SQuAD/LongBench formulation: precision and recall
    of the multiset intersection of normalised tokens.
    """
    pred_tokens = normalize_answer(prediction)
    ref_tokens = normalize_answer(reference)
    if not pred_tokens or not ref_tokens:
        return 1.0 if pred_tokens == ref_tokens else 0.0
    common = Counter(pred_tokens) & Counter(ref_tokens)
    num_common = sum(common.values())
    if num_common == 0:
        return 0.0
    precision = num_common / len(pred_tokens)
    recall = num_common / len(ref_tokens)
    return 2 * precision * recall / (precision + recall)
