"""Recall rate of important tokens (paper Fig. 11).

The recall rate is defined as ``|I_T ∩ I_T^true| / |I_T^true|`` where
``I_T`` are the tokens selected by a compression method and ``I_T^true`` are
the tokens with the top-``B`` exact attention scores.  The inference engine
records one :class:`~repro.model.generation.RecallRecord` per (step, layer,
head); the helpers here aggregate them the way the paper reports them —
averaged across layers, heads and decoding steps.
"""

from __future__ import annotations

import numpy as np

from ..model.generation import RecallRecord

__all__ = ["mean_recall", "recall_by_budget", "recall_by_layer"]


def mean_recall(records: list[RecallRecord]) -> float:
    """Average recall over all records."""
    if not records:
        return 0.0
    return float(np.mean([record.recall for record in records]))


def recall_by_budget(records: list[RecallRecord]) -> dict[int, float]:
    """Average recall grouped by budget."""
    grouped: dict[int, list[float]] = {}
    for record in records:
        grouped.setdefault(record.budget, []).append(record.recall)
    return {budget: float(np.mean(values)) for budget, values in sorted(grouped.items())}


def recall_by_layer(records: list[RecallRecord]) -> dict[int, float]:
    """Average recall grouped by layer index."""
    grouped: dict[int, list[float]] = {}
    for record in records:
        grouped.setdefault(record.layer, []).append(record.recall)
    return {layer: float(np.mean(values)) for layer, values in sorted(grouped.items())}
