"""ROUGE-L score (longest common subsequence F-measure).

Used by LongBench — and therefore by the paper — for the summarisation task
(GovReport).
"""

from __future__ import annotations

from .qa_f1 import normalize_answer

__all__ = ["rouge_l_score"]


def _lcs_length(a: list[str], b: list[str]) -> int:
    """Length of the longest common subsequence of two token lists."""
    if not a or not b:
        return 0
    previous = [0] * (len(b) + 1)
    for token_a in a:
        current = [0] * (len(b) + 1)
        for j, token_b in enumerate(b, start=1):
            if token_a == token_b:
                current[j] = previous[j - 1] + 1
            else:
                current[j] = max(previous[j], current[j - 1])
        previous = current
    return previous[-1]


def rouge_l_score(prediction: str, reference: str, beta: float = 1.2) -> float:
    """ROUGE-L F-measure between a prediction and a reference.

    ``beta`` weights recall over precision as in the original ROUGE
    definition (the common default of 1.2 is used by most implementations).
    """
    pred_tokens = normalize_answer(prediction)
    ref_tokens = normalize_answer(reference)
    if not pred_tokens or not ref_tokens:
        return 1.0 if pred_tokens == ref_tokens else 0.0
    lcs = _lcs_length(pred_tokens, ref_tokens)
    if lcs == 0:
        return 0.0
    precision = lcs / len(pred_tokens)
    recall = lcs / len(ref_tokens)
    denominator = recall + (beta**2) * precision
    if denominator == 0:
        return 0.0
    return (1 + beta**2) * precision * recall / denominator
