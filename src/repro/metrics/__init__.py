"""Evaluation metrics: QA-F1, ROUGE-L, perplexity, recall rate, aggregation."""

from .qa_f1 import normalize_answer, qa_f1_score
from .rouge import rouge_l_score
from .perplexity import perplexity_from_logprobs
from .recall import mean_recall, recall_by_budget
from .aggregate import ScoreTable, average_scores

__all__ = [
    "normalize_answer",
    "qa_f1_score",
    "rouge_l_score",
    "perplexity_from_logprobs",
    "mean_recall",
    "recall_by_budget",
    "ScoreTable",
    "average_scores",
]
