"""Pluggable autoscalers: deciding when the fleet grows or shrinks.

An :class:`Autoscaler` is consulted by the cluster simulator after every
event (arrival, step completion, failure, replica becoming ready) with a
frozen :class:`~repro.cluster.fleet.FleetView` and answers with a
:class:`ScaleDecision` — how many replicas to add and how many to drain.
The simulator clamps every decision to ``[min_replicas, max_replicas]``,
prices the warm-up of each added replica on the step clock, and only
removes a draining replica once it holds no work, so the two elasticity
invariants (fleet size within bounds, no scale-down with in-flight work)
hold regardless of what a policy returns.

Strategies self-register in a name registry mirroring
:mod:`repro.policies`: ``@register_autoscaler("name")`` makes one
available to :func:`build_autoscaler`, the ``repro cluster-bench
--autoscaler`` flag and ``repro list`` at once.  Built-ins:

* ``static`` — never scales; the fleet stays at ``min_replicas`` (the
  baseline elastic runs are compared against);
* ``queue_depth`` — classic backlog watermarks: add a replica when the
  backlog per accepting replica exceeds ``high``, drain one when it falls
  below ``low``;
* ``slo_attainment`` — closes the loop on the quantity that matters:
  scale up while the sliding-window SLO attainment of completed requests
  sits below ``target`` and work is waiting, scale down when attainment
  holds and the fleet has gone quiet;
* ``interactive_slo`` — the class-aware variant: identical control law,
  but its window sees only ``interactive``-class completions, so batch
  work missing its (loose) deadlines never triggers a scale-up.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

from ..policies.spec import PolicySpec
from .fleet import FleetView

__all__ = [
    "ScaleDecision",
    "Autoscaler",
    "StaticAutoscaler",
    "QueueDepthAutoscaler",
    "SLOAttainmentAutoscaler",
    "InteractiveSLOAutoscaler",
    "register_autoscaler",
    "build_autoscaler",
    "resolve_autoscaler",
    "autoscaler_names",
]


@dataclass(frozen=True)
class ScaleDecision:
    """One autoscaler verdict: add and/or drain this many replicas."""

    add: int = 0
    drain: int = 0
    reason: str = ""

    def __post_init__(self) -> None:
        if self.add < 0 or self.drain < 0:
            raise ValueError("add and drain must be non-negative")

    @property
    def is_noop(self) -> bool:
        """Whether the decision changes nothing."""
        return self.add == 0 and self.drain == 0


NO_CHANGE = ScaleDecision()


class Autoscaler:
    """Base class of autoscaling strategies (stateful per simulation run)."""

    name = "abstract"

    def reset(self) -> None:
        """Clear per-run state (called at the start of every run)."""

    def observe(self, slo_met: bool, slo_class: str = "interactive") -> None:
        """Feed one request completion (its SLO outcome) to the policy.

        ``slo_class`` is the completed request's service class; class-
        agnostic policies ignore it.
        """

    def decide(self, view: FleetView) -> ScaleDecision:
        """The scaling action to take given the current fleet view."""
        raise NotImplementedError

    def describe(self) -> dict[str, object]:
        """Identifying configuration of this autoscaler (for reports)."""
        return {"name": self.name}


_AUTOSCALERS: dict[str, type] = {}


def register_autoscaler(name: str) -> Callable[[type], type]:
    """Class decorator registering an :class:`Autoscaler` under ``name``."""

    def decorator(cls: type) -> type:
        existing = _AUTOSCALERS.get(name)
        if existing is not None and existing is not cls:
            raise ValueError(f"autoscaler name {name!r} is already registered")
        _AUTOSCALERS[name] = cls
        cls.name = name
        return cls

    return decorator


def autoscaler_names() -> tuple[str, ...]:
    """Sorted names of all registered autoscalers."""
    return tuple(sorted(_AUTOSCALERS))


def build_autoscaler(name: str, **kwargs: object) -> Autoscaler:
    """Instantiate a registered autoscaler from its name and kwargs."""
    cls = _AUTOSCALERS.get(name)
    if cls is None:
        known = ", ".join(autoscaler_names()) or "<none registered>"
        raise ValueError(f"unknown autoscaler {name!r}; registered: {known}")
    return cls(**kwargs)


def resolve_autoscaler(value: "Autoscaler | str") -> Autoscaler:
    """Coerce an autoscaler instance or spec string into an instance.

    Strings use the same compact form as policies:
    ``"queue_depth"`` or ``"queue_depth:high=2,low=0.25"``.
    """
    if isinstance(value, Autoscaler):
        return value
    spec = PolicySpec.parse(value)
    return build_autoscaler(spec.name, **dict(spec.kwargs))


@register_autoscaler("static")
class StaticAutoscaler(Autoscaler):
    """Fixed fleet: never adds, never drains.

    The simulator still replaces failed replicas to keep the fleet at
    ``min_replicas``, so a static fleet under failure injection heals to
    its floor — it just never grows beyond it.
    """

    def decide(self, view: FleetView) -> ScaleDecision:
        """Always a no-op."""
        return NO_CHANGE


@register_autoscaler("queue_depth")
class QueueDepthAutoscaler(Autoscaler):
    """Backlog-watermark scaling.

    Parameters
    ----------
    high:
        Add one replica when the backlog (parked plus queued requests)
        per accepting replica exceeds this.
    low:
        Drain one replica when backlog per accepting replica falls below
        this and at least one accepting replica is idle.
    cooldown_s:
        Minimum simulated seconds between two scaling actions, so one
        burst does not trigger a boot storm while the first replacement
        is still warming up.
    """

    def __init__(self, high: float = 2.0, low: float = 0.25, cooldown_s: float = 5.0) -> None:
        if high <= low:
            raise ValueError("high watermark must exceed low watermark")
        if cooldown_s < 0:
            raise ValueError("cooldown_s must be non-negative")
        self.high = float(high)
        self.low = float(low)
        self.cooldown_s = float(cooldown_s)
        self._last_action_s = -float("inf")

    def reset(self) -> None:
        """Forget the cooldown anchor."""
        self._last_action_s = -float("inf")

    def decide(self, view: FleetView) -> ScaleDecision:
        """Compare backlog per accepting replica against the watermarks."""
        if view.now_s - self._last_action_s < self.cooldown_s:
            return NO_CHANGE
        accepting = view.accepting
        per_replica = view.backlog / max(len(accepting), 1)
        if per_replica > self.high and view.provisioned < view.max_replicas:
            self._last_action_s = view.now_s
            return ScaleDecision(
                add=1, reason=f"backlog/replica {per_replica:.2f} > {self.high:g}"
            )
        idle = any(r.in_system == 0 for r in accepting)
        if (
            per_replica < self.low
            and idle
            and view.provisioned > view.min_replicas
        ):
            self._last_action_s = view.now_s
            return ScaleDecision(
                drain=1, reason=f"backlog/replica {per_replica:.2f} < {self.low:g}"
            )
        return NO_CHANGE

    def describe(self) -> dict[str, object]:
        """Name plus watermark configuration."""
        return {
            "name": self.name,
            "high": self.high,
            "low": self.low,
            "cooldown_s": self.cooldown_s,
        }


@register_autoscaler("slo_attainment")
class SLOAttainmentAutoscaler(Autoscaler):
    """Scale on the sliding-window SLO attainment of completed requests.

    Parameters
    ----------
    target:
        Attainment the fleet should hold; below it (with work waiting)
        the fleet grows.
    window:
        Number of most recent completions the attainment is computed
        over.
    cooldown_s:
        Minimum simulated seconds between two scaling actions.

    Scaling up needs a pressure signal too: a missed SLO in the window is
    sunk cost, so capacity is only added while requests would actually
    benefit — something is queued or parked, or more requests are in the
    system than there are accepting replicas (they are sharing batches,
    which is what stretched the tail).  Scaling down requires the window
    to be healthy *and* the fleet to be quiet (no backlog, an idle
    replica), which keeps the policy from oscillating at moderate load.
    """

    def __init__(
        self, target: float = 0.9, window: int = 8, cooldown_s: float = 5.0
    ) -> None:
        if not 0.0 < target <= 1.0:
            raise ValueError("target must lie in (0, 1]")
        if window <= 0:
            raise ValueError("window must be positive")
        if cooldown_s < 0:
            raise ValueError("cooldown_s must be non-negative")
        self.target = float(target)
        self.window = int(window)
        self.cooldown_s = float(cooldown_s)
        self._outcomes: deque[bool] = deque(maxlen=self.window)
        self._last_action_s = -float("inf")

    def reset(self) -> None:
        """Clear the completion window and the cooldown anchor."""
        self._outcomes.clear()
        self._last_action_s = -float("inf")

    def observe(self, slo_met: bool, slo_class: str = "interactive") -> None:
        """Record one completion's SLO outcome into the sliding window."""
        self._outcomes.append(slo_met)

    def _attainment(self) -> float | None:
        if not self._outcomes:
            return None
        return sum(self._outcomes) / len(self._outcomes)

    def decide(self, view: FleetView) -> ScaleDecision:
        """Grow when the window misses target with backlog; shrink when quiet."""
        if view.now_s - self._last_action_s < self.cooldown_s:
            return NO_CHANGE
        attainment = self._attainment()
        backlog = view.backlog
        in_system = sum(r.in_system for r in view.replicas)
        pressure = backlog > 0 or in_system > len(view.accepting)
        if (
            attainment is not None
            and attainment < self.target
            and pressure
            and view.provisioned < view.max_replicas
        ):
            self._last_action_s = view.now_s
            return ScaleDecision(
                add=1,
                reason=f"slo attainment {attainment:.2f} < {self.target:g}",
            )
        idle = any(r.in_system == 0 for r in view.accepting)
        if (
            (attainment is None or attainment >= self.target)
            and backlog == 0
            and idle
            and view.provisioned > view.min_replicas
        ):
            self._last_action_s = view.now_s
            shown = 1.0 if attainment is None else attainment
            return ScaleDecision(
                drain=1, reason=f"slo attainment {shown:.2f} and fleet idle"
            )
        return NO_CHANGE

    def describe(self) -> dict[str, object]:
        """Name plus target/window configuration."""
        return {
            "name": self.name,
            "target": self.target,
            "window": self.window,
            "cooldown_s": self.cooldown_s,
        }


@register_autoscaler("interactive_slo")
class InteractiveSLOAutoscaler(SLOAttainmentAutoscaler):
    """SLO-attainment scaling driven by interactive completions only.

    Batch-class requests carry loose (or no meaningful) deadlines; letting
    their outcomes into the attainment window either masks interactive
    pain (batch work sailing through off-hours) or triggers phantom
    scale-ups (batch work missing interactive-grade deadlines by design).
    This variant keeps the same control law as ``slo_attainment`` but its
    window records ``interactive`` completions only.
    """

    def observe(self, slo_met: bool, slo_class: str = "interactive") -> None:
        """Record only interactive completions into the sliding window."""
        if slo_class == "interactive":
            self._outcomes.append(slo_met)
