"""Pluggable admission control: reject early instead of blowing the tail.

An overloaded serving system has two choices for the requests it cannot
serve on time: queue them anyway (every queued request then drags p99 and
goodput down with it) or turn them away at the door.  An
:class:`AdmissionPolicy` makes that call per arriving request from a
frozen :class:`~repro.cluster.fleet.FleetView`; rejections become
first-class :class:`~repro.traffic.report.RejectedRequest` records in the
:class:`~repro.traffic.report.TrafficReport`, so request conservation
(``submitted == completed + rejected``) is checkable from the report.

Policies self-register in a name registry mirroring
:mod:`repro.policies`; built-ins:

* ``always`` — admit everything (plain traffic-simulator behaviour);
* ``token_budget`` — admit only when some accepting replica has enough
  projected-KV-token headroom to hold the whole request; never rejects a
  request the fleet has room for (the admission invariant the
  property-style tests assert);
* ``queue_deadline`` — admit only when the least-loaded accepting
  replica's estimated queue delay leaves the request a chance to meet
  its TTFT deadline;
* ``slo_class`` — class-aware gate: ``interactive`` requests always
  admit, ``batch`` requests only when the fleet has KV-token headroom —
  load-shedding that protects the latency-sensitive class first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..policies.spec import PolicySpec
from .fleet import FleetView

__all__ = [
    "AdmissionDecision",
    "AdmissionPolicy",
    "AlwaysAdmit",
    "TokenBudgetAdmission",
    "QueueDeadlineAdmission",
    "SLOClassAdmission",
    "register_admission",
    "build_admission",
    "resolve_admission",
    "admission_names",
]


@dataclass(frozen=True)
class AdmissionDecision:
    """One admission verdict for one arriving request.

    ``detail`` carries the numbers behind the decision (needed vs.
    available headroom, estimated delay vs. deadline) so rejections are
    auditable in the report and the invariant tests can re-check them.
    """

    admitted: bool
    reason: str = ""
    detail: Mapping[str, float] = field(default_factory=dict)


ADMIT = AdmissionDecision(admitted=True)


class AdmissionPolicy:
    """Base class of admission strategies (stateless unless noted)."""

    name = "abstract"

    def reset(self) -> None:
        """Clear per-run state (called at the start of every run)."""

    def consider(
        self, request_tokens: int, view: FleetView, slo_class: str = "interactive"
    ) -> AdmissionDecision:
        """Admit or reject a request of ``request_tokens`` projected KV tokens.

        ``slo_class`` is the request's service class (``"interactive"`` or
        ``"batch"``); class-agnostic policies ignore it.
        """
        raise NotImplementedError

    def describe(self) -> dict[str, object]:
        """Identifying configuration of this policy (for reports)."""
        return {"name": self.name}


_ADMISSIONS: dict[str, type] = {}


def register_admission(name: str) -> Callable[[type], type]:
    """Class decorator registering an :class:`AdmissionPolicy` under ``name``."""

    def decorator(cls: type) -> type:
        existing = _ADMISSIONS.get(name)
        if existing is not None and existing is not cls:
            raise ValueError(f"admission policy name {name!r} is already registered")
        _ADMISSIONS[name] = cls
        cls.name = name
        return cls

    return decorator


def admission_names() -> tuple[str, ...]:
    """Sorted names of all registered admission policies."""
    return tuple(sorted(_ADMISSIONS))


def build_admission(name: str, **kwargs: object) -> AdmissionPolicy:
    """Instantiate a registered admission policy from its name and kwargs."""
    cls = _ADMISSIONS.get(name)
    if cls is None:
        known = ", ".join(admission_names()) or "<none registered>"
        raise ValueError(f"unknown admission policy {name!r}; registered: {known}")
    return cls(**kwargs)


def resolve_admission(value: "AdmissionPolicy | str") -> AdmissionPolicy:
    """Coerce an admission-policy instance or spec string into an instance.

    Strings use the compact policy form, e.g.
    ``"queue_deadline:deadline_s=2.5"``.
    """
    if isinstance(value, AdmissionPolicy):
        return value
    spec = PolicySpec.parse(value)
    return build_admission(spec.name, **dict(spec.kwargs))


@register_admission("always")
class AlwaysAdmit(AdmissionPolicy):
    """Admit every request (the plain traffic-simulator behaviour)."""

    def consider(
        self, request_tokens: int, view: FleetView, slo_class: str = "interactive"
    ) -> AdmissionDecision:
        """Unconditional admit."""
        return ADMIT


@register_admission("token_budget")
class TokenBudgetAdmission(AdmissionPolicy):
    """Admit only requests the fleet has KV-token headroom for.

    A request of ``P + D`` projected tokens (prompt plus decode length)
    is admitted iff some accepting replica's uncommitted capacity covers
    it — the request can physically land somewhere without waiting for
    other requests to retire.  The contrapositive is the guarantee the
    invariant tests pin: whenever fleet headroom covers a request, this
    policy admits it.

    Parameters
    ----------
    slack_tokens:
        Extra headroom a replica must keep free beyond the request
        itself (0 admits up to exactly full capacity).
    """

    def __init__(self, slack_tokens: int = 0) -> None:
        if slack_tokens < 0:
            raise ValueError("slack_tokens must be non-negative")
        self.slack_tokens = int(slack_tokens)

    def consider(
        self, request_tokens: int, view: FleetView, slo_class: str = "interactive"
    ) -> AdmissionDecision:
        """Admit iff the best accepting replica's headroom covers the request."""
        needed = request_tokens + self.slack_tokens
        headroom = view.max_headroom_tokens
        if view.accepting and headroom >= needed:
            return ADMIT
        return AdmissionDecision(
            admitted=False,
            reason="kv_headroom",
            detail={
                "needed_tokens": float(needed),
                "max_headroom_tokens": float(headroom),
                "accepting_replicas": float(len(view.accepting)),
            },
        )

    def describe(self) -> dict[str, object]:
        """Name plus slack configuration."""
        return {"name": self.name, "slack_tokens": self.slack_tokens}


@register_admission("queue_deadline")
class QueueDeadlineAdmission(AdmissionPolicy):
    """Reject requests whose queue delay would already blow the deadline.

    The estimated delay at a replica is its committed work divided by an
    (explicit, configurable) effective service rate; a request is
    admitted iff the least-loaded accepting replica's estimate leaves it
    within ``deadline_s``.  This is deliberately an *estimate-based*
    policy — like real serving systems it can be wrong in both
    directions, and the scenario tests treat its rejections as a policy
    outcome, not ground truth.

    Parameters
    ----------
    deadline_s:
        Queue-delay budget, typically the TTFT SLO.
    service_tokens_per_s:
        Assumed per-replica throughput (projected KV tokens retired per
        simulated second) used to convert backlog into delay.
    """

    def __init__(
        self, deadline_s: float = 2.5, service_tokens_per_s: float = 2000.0
    ) -> None:
        if deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        if service_tokens_per_s <= 0:
            raise ValueError("service_tokens_per_s must be positive")
        self.deadline_s = float(deadline_s)
        self.service_tokens_per_s = float(service_tokens_per_s)

    def consider(
        self, request_tokens: int, view: FleetView, slo_class: str = "interactive"
    ) -> AdmissionDecision:
        """Admit iff the least-loaded accepting replica can start in time."""
        accepting = view.accepting
        if not accepting:
            return AdmissionDecision(
                admitted=False,
                reason="no_accepting_replica",
                detail={"accepting_replicas": 0.0},
            )
        least_committed = min(r.committed_tokens for r in accepting)
        estimated_delay_s = least_committed / self.service_tokens_per_s
        if estimated_delay_s <= self.deadline_s:
            return ADMIT
        return AdmissionDecision(
            admitted=False,
            reason="queue_deadline",
            detail={
                "estimated_delay_s": estimated_delay_s,
                "deadline_s": self.deadline_s,
            },
        )

    def describe(self) -> dict[str, object]:
        """Name plus deadline/service-rate configuration."""
        return {
            "name": self.name,
            "deadline_s": self.deadline_s,
            "service_tokens_per_s": self.service_tokens_per_s,
        }


@register_admission("slo_class")
class SLOClassAdmission(AdmissionPolicy):
    """Class-aware load shedding: protect interactive traffic first.

    ``interactive`` requests are always admitted (their latency is the
    product being sold; turning them away is the last resort, left to
    stricter gates).  ``batch`` requests are throughput filler and admit
    only when some accepting replica's uncommitted KV-token headroom
    covers them with ``batch_slack_tokens`` to spare — under pressure the
    batch class is shed at the door instead of competing with interactive
    prefills for queue position.

    Parameters
    ----------
    batch_slack_tokens:
        Extra headroom a replica must keep free beyond a batch request
        itself (0 admits batch work up to exactly full capacity).
    """

    def __init__(self, batch_slack_tokens: int = 0) -> None:
        if batch_slack_tokens < 0:
            raise ValueError("batch_slack_tokens must be non-negative")
        self.batch_slack_tokens = int(batch_slack_tokens)

    def consider(
        self, request_tokens: int, view: FleetView, slo_class: str = "interactive"
    ) -> AdmissionDecision:
        """Admit interactive unconditionally, batch only with headroom."""
        if slo_class != "batch":
            return ADMIT
        needed = request_tokens + self.batch_slack_tokens
        headroom = view.max_headroom_tokens
        if view.accepting and headroom >= needed:
            return ADMIT
        return AdmissionDecision(
            admitted=False,
            reason="batch_shed",
            detail={
                "needed_tokens": float(needed),
                "max_headroom_tokens": float(headroom),
                "accepting_replicas": float(len(view.accepting)),
            },
        )

    def describe(self) -> dict[str, object]:
        """Name plus batch-slack configuration."""
        return {"name": self.name, "batch_slack_tokens": self.batch_slack_tokens}
