"""Elastic cluster simulation: autoscaling, admission control, failures.

:class:`ClusterSimulator` extends the open-loop
:class:`~repro.traffic.simulator.TrafficSimulator` with a control plane
over its replica set:

* the fleet is **elastic** — an :class:`~repro.cluster.autoscaler.Autoscaler`
  is consulted after every event and may boot replicas (which pay a
  warm-up cost priced by the step clock before accepting traffic) or
  drain them (a draining replica finishes the work it holds and is only
  removed once empty);
* arrivals pass **admission control** — an
  :class:`~repro.cluster.admission.AdmissionPolicy` may reject a request
  at the door, producing a first-class
  :class:`~repro.traffic.report.RejectedRequest` instead of a blown p99;
* a seeded :class:`~repro.cluster.failures.FailurePlan` **kills replicas**
  mid-run — the in-flight requests of the victim are lost (their decoded
  tokens counted as wasted work) and deterministically re-dispatched from
  their prompts, so retried requests reproduce their failure-free outputs
  token for token.  Plans with ``num_zones > 0`` can kill a whole zone at
  once (correlated failures);
* **live migration and checkpoint recovery** ride on the
  :mod:`repro.seqstate` subsystem: with ``migrate_on_drain`` a scale-down
  checkpoints the draining replica's in-flight requests and restores them
  on other replicas (priced as a host-to-host KV transfer on the virtual
  clock, with all decoded work preserved); with ``checkpoint_interval_s``
  every replica periodically checkpoints its active requests, and a
  failure victim resumes from its last checkpoint instead of
  re-prefilling — only the tokens decoded after the checkpoint count as
  lost work.

Event order extends the base simulator's total order and stays fully
deterministic: at equal instants, replicas becoming ready beat failures,
failures beat arrivals, and arrivals beat engine steps; every tie within
a kind breaks on the stable (index, plan, arrival) order.  On the
perfmodel clock two runs with equal seeds emit byte-identical reports —
including the scaling timeline, the failure log and every rejection.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Sequence

from ..api import EngineSpec
from ..execbackend import ReplicaHandle
from ..seqstate import SequenceCheckpoint
from ..serving import BatchedEngine
from ..traffic.clock import StepClock
from ..traffic.report import RejectedRequest, SLOSpec, TrafficReport
from ..traffic.router import Router
from ..traffic.simulator import Replica, TrafficConfig, TrafficSimulator
from ..traffic.workload import TrafficRequest
from .admission import AdmissionPolicy, resolve_admission
from .autoscaler import Autoscaler, resolve_autoscaler
from .failures import FailureEvent, FailurePlan
from .fleet import FleetView, ReplicaInfo, ReplicaLifecycle

__all__ = ["ClusterConfig", "ClusterReplica", "ClusterSimulator", "simulate_cluster"]

# Fallback per-replica admission capacity (projected KV tokens) when the
# engine spec declares neither kv_capacity_tokens nor kv_budget_bytes:
# half a k of prompt-plus-decode tokens per batch slot.
DEFAULT_CAPACITY_TOKENS_PER_SLOT = 512

# Completions feeding FleetView.recent_slo_attainment, the fleet-level
# informational signal offered to any control policy.  Policies that want
# a configurable window keep their own via Autoscaler.observe() — the
# built-in slo_attainment autoscaler does exactly that.
RECENT_SLO_WINDOW = 16


@dataclass(frozen=True)
class ClusterConfig:
    """Configuration of one elastic cluster simulation.

    Attributes
    ----------
    engine:
        Replica engine description; every booted replica is built from
        this one spec (its ``kv_capacity_tokens`` feeds admission
        control).
    min_replicas / max_replicas:
        Provisioning bounds.  The simulator heals the fleet back to
        ``min_replicas`` after failures regardless of the autoscaler and
        clamps every scale-up to ``max_replicas``.
    autoscaler / admission:
        Control-plane policies — instances, or compact spec strings such
        as ``"queue_depth:high=2"`` resolved through the registries.
    router / clock / arch / context_scale / slo:
        As in :class:`~repro.traffic.simulator.TrafficConfig`.
    failures:
        The failure-injection plan (empty by default).
    max_retries:
        Failure re-dispatches a request may consume before it is given
        up on (recorded as rejected with reason ``"retries_exhausted"``).
    migrate_on_drain:
        When set, a scale-down does not wait for the draining replica to
        finish: its in-flight requests are checkpointed out and restored
        on other replicas (or parked until one accepts), the queued ones
        re-dispatched, and the replica removed immediately.  Each restore
        charges the target replica the clock's migration cost for the
        checkpointed KV; no decoded token is lost and nothing is
        re-prefilled.
    checkpoint_interval_s:
        When set, every replica checkpoints its active requests each
        time this much simulation time has passed on its clock.  A
        failure victim whose requests hold a checkpoint resumes from it
        instead of re-prefilling; only the tokens decoded after the last
        checkpoint count toward ``lost_tokens``.
    workers:
        Worker-process count for the ``multiprocess`` execution backend
        (as in :class:`~repro.traffic.simulator.TrafficConfig`); reports
        stay byte-identical to the serial default.
    """

    engine: EngineSpec = field(default_factory=EngineSpec)
    min_replicas: int = 1
    max_replicas: int = 4
    autoscaler: Autoscaler | str = "static"
    admission: AdmissionPolicy | str = "always"
    router: str = "round_robin"
    clock: str = "perfmodel"
    arch: str = "llama-3.1-8b"
    context_scale: int = 64
    slo: SLOSpec = field(default_factory=SLOSpec)
    failures: FailurePlan = field(default_factory=FailurePlan)
    max_retries: int = 3
    migrate_on_drain: bool = False
    checkpoint_interval_s: float | None = None
    workers: int | None = None

    def __post_init__(self) -> None:
        if self.min_replicas < 1:
            raise ValueError("min_replicas must be at least 1")
        if self.max_replicas < self.min_replicas:
            raise ValueError("max_replicas must be >= min_replicas")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.checkpoint_interval_s is not None and self.checkpoint_interval_s <= 0:
            raise ValueError("checkpoint_interval_s must be positive when set")

    def traffic_config(self) -> TrafficConfig:
        """The base-simulator slice of this configuration."""
        return TrafficConfig(
            engine=self.engine,
            num_replicas=self.min_replicas,
            router=self.router,
            clock=self.clock,
            arch=self.arch,
            context_scale=self.context_scale,
            slo=self.slo,
            workers=self.workers,
        )

    def capacity_tokens(self, kv_bytes_per_token: int) -> int:
        """Per-replica admission capacity in projected KV tokens.

        Resolution order: the engine spec's declared
        ``kv_capacity_tokens``; else its ``kv_budget_bytes`` converted at
        the served model's KV bytes per token; else
        ``max_batch_size * DEFAULT_CAPACITY_TOKENS_PER_SLOT``.
        """
        if self.engine.kv_capacity_tokens is not None:
            return self.engine.kv_capacity_tokens
        if self.engine.kv_budget_bytes is not None:
            return max(self.engine.kv_budget_bytes // kv_bytes_per_token, 1)
        return self.engine.max_batch_size * DEFAULT_CAPACITY_TOKENS_PER_SLOT


class ClusterReplica(Replica):
    """One fleet replica: a serving engine plus its lifecycle stage."""

    def __init__(
        self,
        index: int,
        engine: BatchedEngine | ReplicaHandle,
        state: ReplicaLifecycle = ReplicaLifecycle.ACTIVE,
        ready_at_s: float = 0.0,
    ) -> None:
        super().__init__(index, engine)
        self.state = state
        self.ready_at_s = ready_at_s

    @property
    def is_live(self) -> bool:
        """Whether the replica still exists (not stopped or failed)."""
        return self.state in (
            ReplicaLifecycle.STARTING,
            ReplicaLifecycle.ACTIVE,
            ReplicaLifecycle.DRAINING,
        )


class ClusterSimulator(TrafficSimulator):
    """Open-loop traffic over an elastic, failure-prone replica fleet.

    Parameters
    ----------
    config:
        The cluster description; autoscaler, admission policy, router and
        clock are built from it (instances can be injected through the
        config's ``autoscaler``/``admission`` fields or the
        ``router``/``clock`` constructor arguments).
    """

    def __init__(
        self,
        config: ClusterConfig | None = None,
        router: Router | None = None,
        clock: StepClock | None = None,
    ) -> None:
        self.cluster_config = config or ClusterConfig()
        super().__init__(self.cluster_config.traffic_config(), router=router, clock=clock)
        self.autoscaler = resolve_autoscaler(self.cluster_config.autoscaler)
        self.admission = resolve_admission(self.cluster_config.admission)
        self._kv_bytes_per_token = self.model.config.kv_bytes_per_token()
        self._capacity_tokens = self.cluster_config.capacity_tokens(
            self._kv_bytes_per_token
        )
        self._reset_cluster_state()

    def _reset_cluster_state(self) -> None:
        """(Re-)initialise the per-run cluster state (called by every run())."""
        self.fleet: list[ClusterReplica] = []
        self.replicas = self.fleet
        self._next_index = 0
        self._parked: deque[TrafficRequest] = deque()
        self._parked_checkpoints: deque[SequenceCheckpoint] = deque()
        self._request_of: dict[str, TrafficRequest] = {}
        self._retry_counts: dict[str, int] = {}
        self._migration_counts: dict[str, int] = {}
        self._recovery_counts: dict[str, int] = {}
        # Last periodic checkpoint of each in-flight request (purged at
        # retirement) and each replica's last checkpoint instant.
        self._checkpoints: dict[str, SequenceCheckpoint] = {}
        self._last_ckpt_s: dict[int, float] = {}
        self._lost_tokens = 0
        self._rejected: list[RejectedRequest] = []
        self._failure_log: list[dict[str, object]] = []
        self._scaling_log: list[dict[str, object]] = []
        self._recent_slo: deque[bool] = deque(maxlen=RECENT_SLO_WINDOW)
        self._peak_provisioned = 0

    # ------------------------------------------------------------------
    # fleet state
    # ------------------------------------------------------------------
    def _provisioned(self) -> int:
        """Replicas counting toward the fleet-size bound (starting + active)."""
        return sum(
            1
            for r in self.fleet
            if r.state in (ReplicaLifecycle.STARTING, ReplicaLifecycle.ACTIVE)
        )

    def _accepting(self) -> list[ClusterReplica]:
        """Replicas that may receive new requests, in index order."""
        return [r for r in self.fleet if r.state is ReplicaLifecycle.ACTIVE]

    def _fleet_view(self, now_s: float) -> FleetView:
        """Freeze the live fleet into the control plane's decision input."""
        infos = tuple(
            ReplicaInfo(
                index=r.index,
                state=r.state,
                queued=r.queued,
                active=r.active,
                committed_tokens=r.reserved_kv_bytes // self._kv_bytes_per_token,
                capacity_tokens=self._capacity_tokens,
                clock_s=r.clock_s,
            )
            for r in self.fleet
            if r.is_live
        )
        attainment = (
            sum(self._recent_slo) / len(self._recent_slo) if self._recent_slo else None
        )
        return FleetView(
            now_s=now_s,
            replicas=infos,
            parked=len(self._parked),
            recent_slo_attainment=attainment,
            min_replicas=self.cluster_config.min_replicas,
            max_replicas=self.cluster_config.max_replicas,
        )

    def _log_scale(self, now_s: float, action: str, replica: int, reason: str) -> None:
        """Append one fleet transition to the scaling timeline."""
        self._scaling_log.append(
            {
                "time_s": now_s,
                "action": action,
                "replica": replica,
                "reason": reason,
                "provisioned": self._provisioned(),
            }
        )

    # ------------------------------------------------------------------
    # fleet transitions
    # ------------------------------------------------------------------
    def _boot_replica(self, now_s: float, warm: bool, reason: str) -> ClusterReplica:
        """Provision one replica; ``warm`` boots pay the clock's warm-up lag."""
        replica = ClusterReplica(self._next_index, self._backend.create_handle())
        self._next_index += 1
        if warm:
            replica.state = ReplicaLifecycle.STARTING
            replica.ready_at_s = now_s + self.clock.warmup_seconds()
            replica.clock_s = replica.ready_at_s
        else:
            replica.state = ReplicaLifecycle.ACTIVE
            replica.ready_at_s = now_s
            replica.clock_s = now_s
        self.fleet.append(replica)
        # The base-class report aggregation (occupancy, engine steps) sums
        # over self.replicas; keep it aliased to the full fleet history.
        self.replicas = self.fleet
        self._log_scale(now_s, "boot", replica.index, reason)
        return replica

    def _stop_replica(self, replica: ClusterReplica, now_s: float) -> None:
        """Remove a drained replica (it must hold no work)."""
        assert not replica.has_work(), "scale-down with in-flight work"
        replica.state = ReplicaLifecycle.STOPPED
        self._log_scale(now_s, "remove", replica.index, "drained empty")

    def _begin_drains(self, count: int, now_s: float, reason: str) -> None:
        """Mark ``count`` least-loaded active replicas as draining.

        With ``migrate_on_drain`` the replica does not linger: its work is
        checkpoint-migrated out and it is removed at once.
        """
        candidates = sorted(
            self._accepting(), key=lambda r: (r.queued + r.active, -r.index)
        )
        for replica in candidates[:count]:
            replica.state = ReplicaLifecycle.DRAINING
            replica.handle.drain()
            self._log_scale(now_s, "drain", replica.index, reason)
            if self.cluster_config.migrate_on_drain:
                self._migrate_out(replica, now_s)
            elif not replica.has_work():
                self._stop_replica(replica, now_s)

    def _migrate_out(self, replica: ClusterReplica, now_s: float) -> None:
        """Empty a draining replica through checkpoint migration, then remove it.

        Active requests (and any parked preempted checkpoints) move as
        :class:`~repro.seqstate.SequenceCheckpoint` objects — every decoded
        token travels with them, so nothing is re-prefilled.  Queued
        requests have no state yet and simply re-dispatch.  The replica is
        removed immediately; its engine is never stepped again.
        """
        handle = replica.handle
        queued = list(handle.snapshot().queued)
        for request_id in list(handle.active_request_ids):
            checkpoint = handle.checkpoint_request(request_id, keep=False)
            self._migration_counts[request_id] = (
                self._migration_counts.get(request_id, 0) + 1
            )
            self._place_checkpoint(checkpoint, now_s)
        for checkpoint in handle.pop_preempted():
            request_id = checkpoint.request_id
            self._migration_counts[request_id] = (
                self._migration_counts.get(request_id, 0) + 1
            )
            self._place_checkpoint(checkpoint, now_s)
        for serve_request in queued:
            request_id = serve_request.request_id
            self._replica_of.pop(request_id, None)
            self._dispatch(self._request_of[request_id], now_s)
        # The engine may still list the migrated-away queued entries; it is
        # discarded here, so bypass _stop_replica's empty assertion.
        replica.state = ReplicaLifecycle.STOPPED
        self._log_scale(now_s, "remove", replica.index, "migrated out")

    def _place_checkpoint(self, checkpoint: SequenceCheckpoint, now_s: float) -> None:
        """Restore a checkpoint on the least-loaded accepting replica.

        Parks it when nothing accepts traffic (a warm-up or a healed fleet
        restores it later — the run cannot end while checkpoints are
        parked).
        """
        accepting = self._accepting()
        if not accepting:
            self._parked_checkpoints.append(checkpoint)
            return
        target = min(accepting, key=lambda r: (r.queued + r.active, r.index))
        self._restore_checkpoint_on(target, checkpoint, now_s)

    def _restore_checkpoint_on(
        self, replica: ClusterReplica, checkpoint: SequenceCheckpoint, now_s: float
    ) -> None:
        """Restore one checkpoint on ``replica``, charging the transfer cost.

        The migration cost (host-to-host movement of ``position`` tokens of
        KV, priced by the step clock) advances the target's clock before
        the restored request can step — the stall every request on that
        replica observes.  Admission and first-token stamps are *not*
        touched: unlike a retry, a migrated request keeps its history, so
        its latencies grow only by the transfer, never by a re-prefill.
        """
        replica.clock_s = max(replica.clock_s, now_s) + self.clock.migration_seconds(
            checkpoint.position
        )
        replica.handle.restore_request(checkpoint)
        self._replica_of[checkpoint.request_id] = replica.index

    def _control(self, now_s: float) -> None:
        """Run the control plane after one event: heal, then autoscale."""
        # Healing to the floor is the simulator's own responsibility: a
        # fleet below min_replicas (after failures) boots replacements
        # whatever the autoscaler policy says.
        while self._provisioned() < self.cluster_config.min_replicas:
            self._boot_replica(now_s, warm=True, reason="min_replicas")
        decision = self.autoscaler.decide(self._fleet_view(now_s))
        if decision.add:
            can_add = max(self.cluster_config.max_replicas - self._provisioned(), 0)
            for _ in range(min(decision.add, can_add)):
                self._boot_replica(now_s, warm=True, reason=decision.reason or "scale_up")
        if decision.drain:
            can_drain = max(self._provisioned() - self.cluster_config.min_replicas, 0)
            if can_drain:
                self._begin_drains(
                    min(decision.drain, can_drain), now_s, decision.reason or "scale_down"
                )
        self._peak_provisioned = max(self._peak_provisioned, self._provisioned())

    # ------------------------------------------------------------------
    # request flow
    # ------------------------------------------------------------------
    def _projected_tokens(self, request: TrafficRequest) -> int:
        """Projected KV tokens of one request (prompt plus decode length)."""
        return request.prompt_length() + request.max_new_tokens

    def _dispatch(self, request: TrafficRequest, now_s: float) -> None:
        """Route one admitted request, or park it when nothing accepts."""
        accepting = self._accepting()
        if not accepting:
            self._parked.append(request)
            return
        choice = int(self.router.choose(accepting, request))
        if not 0 <= choice < len(accepting):
            raise ValueError(
                f"router {self.router.name!r} chose replica {choice}, "
                f"but only {len(accepting)} accept traffic"
            )
        replica = accepting[choice]
        # Fast-forward an idle replica to the dispatch instant (a retry
        # dispatches at the failure instant, later than its arrival).
        replica.clock_s = max(replica.clock_s, now_s)
        replica.handle.submit(
            request.prompt_ids,
            request_id=request.request_id,
            max_new_tokens=request.max_new_tokens,
            policy=request.policy,
            arrival_time_s=request.arrival_time_s,
            slo_class=request.slo_class,
        )
        self._replica_of[request.request_id] = replica.index

    def _drain_parked(self, now_s: float) -> None:
        """Dispatch parked requests once a replica accepts traffic again."""
        while self._parked and self._accepting():
            self._dispatch(self._parked.popleft(), now_s)
        while self._parked_checkpoints and self._accepting():
            self._place_checkpoint(self._parked_checkpoints.popleft(), now_s)

    def _reject(
        self, request: TrafficRequest, reason: str, detail: dict[str, float]
    ) -> None:
        """Record one rejection as a first-class report entry."""
        self._rejected.append(
            RejectedRequest(
                request_id=request.request_id,
                arrival_time_s=request.arrival_time_s,
                prompt_tokens=request.prompt_length(),
                max_new_tokens=request.max_new_tokens,
                reason=reason,
                policy=request.policy.name if request.policy is not None else "",
                detail=detail,
            )
        )

    def _handle_arrival(self, request: TrafficRequest, now_s: float) -> None:
        """Admission-check one arrival, then dispatch or reject it."""
        self._request_of[request.request_id] = request
        decision = self.admission.consider(
            self._projected_tokens(request),
            self._fleet_view(now_s),
            slo_class=request.slo_class,
        )
        if not decision.admitted:
            self._reject(request, decision.reason, dict(decision.detail))
            return
        self._dispatch(request, now_s)

    def _retry_lost(self, request_id: str, now_s: float) -> bool:
        """Re-dispatch one checkpoint-less lost request from its prompt.

        The lost attempt's admission/first-token stamps are void; the
        successful attempt re-stamps them, so TTFT and queue wait span the
        whole failure detour.  Returns whether a retry was actually
        dispatched (``False`` when the retry budget is exhausted and the
        request is rejected instead — ``_retry_counts`` counts actual
        re-dispatches, so a given-up request gets no phantom retry).
        """
        self._admitted_at_s.pop(request_id, None)
        self._first_token_at_s.pop(request_id, None)
        self._replica_of.pop(request_id, None)
        request = self._request_of[request_id]
        retries_so_far = self._retry_counts.get(request_id, 0)
        if retries_so_far >= self.cluster_config.max_retries:
            self._reject(
                request, "retries_exhausted", {"retries": float(retries_so_far)}
            )
            return False
        self._retry_counts[request_id] = retries_so_far + 1
        self._dispatch(request, now_s)
        return True

    def _fire_failure(self, event: FailureEvent, now_s: float) -> None:
        """Kill the event's victims; recover or re-dispatch their work.

        A plain event kills the single slot-selected replica; a zone event
        kills every live replica in its zone (correlated failure).  All
        victims die *before* any lost work is re-placed, so nothing is
        re-dispatched onto a replica doomed by the same event.  Active
        requests holding a periodic checkpoint (and checkpoints parked by
        preemption, which are current by construction) resume through the
        checkpoint path — only the tokens decoded past the checkpoint are
        lost; everything else re-dispatches from the prompt.
        """
        pool = sorted(
            (
                r
                for r in self.fleet
                if r.state in (ReplicaLifecycle.ACTIVE, ReplicaLifecycle.DRAINING)
            ),
            key=lambda r: r.index,
        )
        num_zones = self.cluster_config.failures.num_zones
        if event.zone is not None and num_zones:
            victims = [r for r in pool if r.index % num_zones == event.zone]
        else:
            victims = [pool[event.slot % len(pool)]] if pool else []
        if not victims:
            self._failure_log.append(
                {
                    "time_s": now_s,
                    "replica": -1,
                    "slot": event.slot,
                    "zone": event.zone,
                    "skipped": True,
                }
            )
            return
        inventories = []
        for victim in victims:
            snapshot = victim.handle.snapshot()
            parked_checkpoints = victim.handle.pop_preempted()
            victim.state = ReplicaLifecycle.FAILED
            self._log_scale(now_s, "fail", victim.index, "failure injection")
            inventories.append((victim, snapshot, parked_checkpoints))
        for victim, snapshot, parked_checkpoints in inventories:
            lost_ids: list[str] = []
            retried: list[str] = []
            recovered: list[str] = []
            lost_tokens = 0
            for serve_request in snapshot.queued:
                request_id = serve_request.request_id
                lost_ids.append(request_id)
                if self._retry_lost(request_id, now_s):
                    retried.append(request_id)
            for serve_request, tokens_at_death in snapshot.active:
                request_id = serve_request.request_id
                checkpoint = self._checkpoints.get(request_id)
                if checkpoint is not None:
                    lost_tokens += max(
                        0, tokens_at_death - checkpoint.tokens_generated
                    )
                    self._recovery_counts[request_id] = (
                        self._recovery_counts.get(request_id, 0) + 1
                    )
                    recovered.append(request_id)
                    self._place_checkpoint(checkpoint, now_s)
                    continue
                lost_ids.append(request_id)
                lost_tokens += tokens_at_death
                if self._retry_lost(request_id, now_s):
                    retried.append(request_id)
            for checkpoint in parked_checkpoints:
                request_id = checkpoint.request_id
                self._recovery_counts[request_id] = (
                    self._recovery_counts.get(request_id, 0) + 1
                )
                recovered.append(request_id)
                self._place_checkpoint(checkpoint, now_s)
            self._lost_tokens += lost_tokens
            self._failure_log.append(
                {
                    "time_s": now_s,
                    "replica": victim.index,
                    "slot": event.slot,
                    "zone": event.zone,
                    "lost_requests": lost_ids,
                    "retried": retried,
                    "recovered": recovered,
                    "lost_tokens": lost_tokens,
                }
            )

    def _maybe_checkpoint(self, replica: ClusterReplica, now_s: float) -> None:
        """Periodically checkpoint a replica's active requests.

        Runs after every engine step once ``checkpoint_interval_s`` of
        simulation time has passed on the replica's clock since its last
        round; each active request's latest checkpoint replaces the
        previous one (purged at retirement).
        """
        interval = self.cluster_config.checkpoint_interval_s
        if interval is None:
            return
        if now_s - self._last_ckpt_s.get(replica.index, 0.0) < interval:
            return
        self._last_ckpt_s[replica.index] = now_s
        for request_id in replica.handle.active_request_ids:
            self._checkpoints[request_id] = replica.handle.checkpoint_request(
                request_id, keep=True
            )

    # ------------------------------------------------------------------
    # event loop
    # ------------------------------------------------------------------
    def _has_live_work(self) -> bool:
        """Whether any live replica holds queued or in-flight requests."""
        return any(
            r.has_work()
            for r in self.fleet
            if r.state in (ReplicaLifecycle.ACTIVE, ReplicaLifecycle.DRAINING)
        )

    def run(self, requests: Sequence[TrafficRequest]) -> TrafficReport:
        """Simulate the workload over the elastic fleet to completion.

        Each call starts cold: the fleet is rebuilt at ``min_replicas``,
        all control-plane state (autoscaler windows, admission state,
        router cursors, retry counts) is reset and the failure plan is
        re-armed, so repeated calls are independent and identical.
        """
        self.router.reset()
        self.autoscaler.reset()
        self.admission.reset()
        self._backend.reset()
        self._reset_run_state()
        self._reset_cluster_state()

        pending = deque(
            sorted(enumerate(requests), key=lambda item: (item[1].arrival_time_s, item[0]))
        )
        failures = deque(self.cluster_config.failures.events)
        for _ in range(self.cluster_config.min_replicas):
            self._boot_replica(0.0, warm=False, reason="initial fleet")
        self._peak_provisioned = self._provisioned()
        # Step-compute speculation is sound only while no control-plane
        # path can mutate a replica between its step being posted and its
        # outcome being processed: drain-migration checkpoints replicas
        # out mid-window, and parked work can be dispatched onto one at a
        # mid-window ready event.  Everything else (drain flags, failure
        # kills, periodic checkpoints) only fires once every earlier step
        # outcome has been consumed — see repro.execbackend.base.
        may_speculate = not self.cluster_config.migrate_on_drain
        run_start = time.perf_counter()

        try:
            while (
                pending or self._parked or self._parked_checkpoints or self._has_live_work()
            ):
                # Candidate next events as (time, kind priority, tiebreak):
                # ready < failure < arrival < step at equal instants.
                candidates: list[tuple[float, int, int, str, object]] = []
                starting = [r for r in self.fleet if r.state is ReplicaLifecycle.STARTING]
                if starting:
                    replica = min(starting, key=lambda r: (r.ready_at_s, r.index))
                    candidates.append(
                        (replica.ready_at_s, 0, replica.index, "ready", replica)
                    )
                if failures:
                    event = failures[0]
                    candidates.append((event.time_s, 1, event.slot, "fail", event))
                if pending:
                    order, request = pending[0]
                    candidates.append(
                        (request.arrival_time_s, 2, order, "arrival", request)
                    )
                working = [
                    r
                    for r in self.fleet
                    if r.state in (ReplicaLifecycle.ACTIVE, ReplicaLifecycle.DRAINING)
                    and r.has_work()
                ]
                if working:
                    if may_speculate and not self._parked and not self._parked_checkpoints:
                        # Every working replica strictly before the next
                        # non-step event must step before that event can
                        # observe or touch it — start those steps now so
                        # backend workers compute them concurrently.
                        gate_s = min((c[0] for c in candidates), default=None)
                        for candidate in working:
                            if gate_s is None or candidate.clock_s < gate_s:
                                candidate.handle.start_step()
                    replica = min(working, key=lambda r: (r.clock_s, r.index))
                    candidates.append((replica.clock_s, 3, replica.index, "step", replica))
                if not candidates:
                    raise RuntimeError(
                        "cluster simulation stalled with requests outstanding"
                    )
                time_s, _, _, kind, payload = min(
                    candidates, key=lambda c: (c[0], c[1], c[2])
                )

                self._run_event(kind, payload, time_s, pending, failures)
        finally:
            self._backend.drain_counters()
            self._run_wall_s = time.perf_counter() - run_start

        return self._build_report()

    def _run_event(
        self,
        kind: str,
        payload: object,
        time_s: float,
        pending: deque,
        failures: deque,
    ) -> None:
        """Process one scheduled event (the body of the run() loop)."""
        if kind == "ready":
            replica = payload
            replica.state = ReplicaLifecycle.ACTIVE
            replica.clock_s = max(replica.clock_s, time_s)
            self._log_scale(time_s, "ready", replica.index, "warm-up complete")
            self._drain_parked(time_s)
            self._control(time_s)
        elif kind == "fail":
            failures.popleft()
            self._fire_failure(payload, time_s)
            self._control(time_s)
        elif kind == "arrival":
            pending.popleft()
            self._handle_arrival(payload, time_s)
            self._control(time_s)
        else:  # step
            replica = payload
            retired, step_end_s = self._step_replica(replica)
            for record in retired:
                self._recent_slo.append(record.slo_met)
                self.autoscaler.observe(record.slo_met, slo_class=record.slo_class)
                self._checkpoints.pop(record.request_id, None)
            self._maybe_checkpoint(replica, step_end_s)
            if replica.state is ReplicaLifecycle.DRAINING and not replica.has_work():
                self._stop_replica(replica, step_end_s)
            self._control(step_end_s)

    # ------------------------------------------------------------------
    # report
    # ------------------------------------------------------------------
    def _retries_of(self, request_id: str) -> int:
        """Failure re-dispatches the request consumed before completing."""
        return self._retry_counts.get(request_id, 0)

    def _migrations_of(self, request_id: str) -> int:
        """Drain migrations the request went through before completing."""
        return self._migration_counts.get(request_id, 0)

    def _recoveries_of(self, request_id: str) -> int:
        """Checkpoint recoveries the request went through before completing."""
        return self._recovery_counts.get(request_id, 0)

    def _build_report(self) -> TrafficReport:
        """The base report plus the cluster-layer outcome records."""
        report = super()._build_report()
        report.num_replicas = self._peak_provisioned
        report.rejected = self._rejected
        report.num_retries = sum(self._retry_counts.values())
        report.lost_tokens = self._lost_tokens
        report.num_migrations = sum(self._migration_counts.values())
        report.num_recoveries = sum(self._recovery_counts.values())
        report.autoscaler = {
            **self.autoscaler.describe(),
            "min_replicas": self.cluster_config.min_replicas,
            "max_replicas": self.cluster_config.max_replicas,
        }
        report.admission = self.admission.describe()
        report.failures = self._failure_log
        report.scaling = self._scaling_log
        return report


def simulate_cluster(
    requests: Sequence[TrafficRequest],
    config: ClusterConfig | None = None,
    router: Router | None = None,
    clock: StepClock | None = None,
    *,
    workers: int | None = None,
) -> TrafficReport:
    """Run one elastic cluster simulation and return its report.

    The cluster counterpart of :func:`repro.traffic.simulate` (also
    reachable through the ``autoscaler``/``admission``/``failures`` knobs
    of :func:`repro.api.simulate`).  ``workers`` selects the multiprocess
    execution backend; the report is byte-identical to the serial default.
    """
    config = config or ClusterConfig()
    if workers is not None:
        config = replace(config, workers=workers)
    with ClusterSimulator(config, router=router, clock=clock) as simulator:
        return simulator.run(requests)
