"""Seeded failure injection: killing replicas at planned instants.

A :class:`FailurePlan` is a frozen, fully explicit schedule of replica
kills — either written out by hand (``FailureEvent(time_s=12.0)``) or
drawn once from a seed (:meth:`FailurePlan.seeded`).  Determinism is the
whole point: because the plan is fixed before the run starts, a failure
run is exactly as reproducible as a failure-free one, and the determinism
tests can compare the two token for token.

Events name a *slot*, not a replica: the fleet is elastic, so the victim
is resolved at fire time as ``alive[slot % len(alive)]`` over the
``ACTIVE``/``DRAINING`` replicas in index order (idle replicas die too —
real failures do not wait for work).  A plan therefore stays valid
whatever the autoscaler did in the meantime; an event firing when no
such replica exists is recorded as skipped.

Failures can also be *correlated*: a plan with ``num_zones > 0`` groups
replicas into zones (replica ``index % num_zones``) and an event carrying
``zone=z`` kills every live replica in zone ``z`` at once — the
rack/power-domain failure mode single-victim plans cannot express.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FailureEvent", "FailurePlan"]


@dataclass(frozen=True)
class FailureEvent:
    """One planned replica kill.

    Attributes
    ----------
    time_s:
        Instant on the simulation clock the kill fires at.  The kill
        takes effect at the first event boundary at or after this
        instant: engine steps are atomic, so a step that began before
        the kill completes and the victim dies before its next one.
    slot:
        Deterministic victim selector: index into the live replicas
        (sorted by replica index) modulo their count at fire time.
        Ignored for zone events.
    zone:
        ``None`` (the default) kills the single slot-selected replica.
        Set to a zone index — meaningful only in a plan with
        ``num_zones > 0`` — to kill every live replica whose
        ``index % num_zones`` equals it (a correlated failure).
    """

    time_s: float
    slot: int = 0
    zone: int | None = None

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ValueError("time_s must be non-negative")
        if self.slot < 0:
            raise ValueError("slot must be non-negative")
        if self.zone is not None and self.zone < 0:
            raise ValueError("zone must be non-negative when set")

    def to_dict(self) -> dict[str, object]:
        """Plain-dict form (JSON-ready)."""
        return {"time_s": self.time_s, "slot": self.slot, "zone": self.zone}


@dataclass(frozen=True)
class FailurePlan:
    """A fixed schedule of replica kills for one simulation run.

    The empty plan (the default) injects nothing, so every cluster run
    carries a plan and failure-free runs are just the degenerate case.

    ``num_zones`` groups replicas into failure-correlation zones (replica
    ``index % num_zones``); it must be positive for the plan to contain
    zone events.
    """

    events: tuple[FailureEvent, ...] = ()
    num_zones: int = 0

    def __post_init__(self) -> None:
        if self.num_zones < 0:
            raise ValueError("num_zones must be non-negative")
        ordered = tuple(
            sorted(self.events, key=lambda e: (e.time_s, e.slot))
        )
        object.__setattr__(self, "events", ordered)
        if self.num_zones == 0 and any(e.zone is not None for e in ordered):
            raise ValueError("zone events require num_zones > 0")
        if self.num_zones and any(
            e.zone is not None and e.zone >= self.num_zones for e in ordered
        ):
            raise ValueError("event zone must be < num_zones")

    def __bool__(self) -> bool:
        return bool(self.events)

    def __len__(self) -> int:
        return len(self.events)

    @classmethod
    def seeded(
        cls,
        seed: int,
        num_failures: int,
        horizon_s: float,
        max_slot: int = 16,
    ) -> "FailurePlan":
        """Draw a plan of ``num_failures`` kills uniform over ``[0, horizon_s)``.

        All randomness comes from ``numpy.random.default_rng(seed)``, so
        equal arguments produce bit-identical plans on any machine.
        ``max_slot`` bounds the drawn slot values; slots wrap modulo the
        live fleet size at fire time anyway, so the bound only shapes the
        draw.
        """
        if num_failures < 0:
            raise ValueError("num_failures must be non-negative")
        if horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        if max_slot <= 0:
            raise ValueError("max_slot must be positive")
        rng = np.random.default_rng(seed)
        times = np.sort(rng.uniform(0.0, horizon_s, size=num_failures))
        slots = rng.integers(0, max_slot, size=num_failures)
        return cls(
            events=tuple(
                FailureEvent(time_s=float(t), slot=int(s))
                for t, s in zip(times.tolist(), slots.tolist())
            )
        )

    def describe(self) -> dict[str, object]:
        """Identifying form of this plan (for reports)."""
        return {
            "num_events": len(self.events),
            "num_zones": self.num_zones,
            "events": [e.to_dict() for e in self.events],
        }
