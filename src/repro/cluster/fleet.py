"""Read-only fleet state the cluster control plane decides on.

Autoscalers and admission policies never touch engines directly: every
decision is a pure function of a :class:`FleetView` — a frozen snapshot of
the fleet at one instant of the simulation clock.  Keeping the decision
inputs explicit and immutable has two payoffs: control policies are
trivially unit-testable against synthetic views (the property-style
invariant tests construct views by hand), and the simulator stays the
single writer of fleet state, which is what makes elastic runs
bit-reproducible.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["ReplicaLifecycle", "ReplicaInfo", "FleetView"]


class ReplicaLifecycle(enum.Enum):
    """Lifecycle stage of one cluster replica.

    ``STARTING`` replicas are paying their warm-up cost and accept no
    traffic yet; ``ACTIVE`` replicas serve; ``DRAINING`` replicas finish
    the work they hold but receive nothing new; ``STOPPED`` replicas were
    drained empty and removed; ``FAILED`` replicas were killed by failure
    injection, losing their in-flight work.
    """

    STARTING = "starting"
    ACTIVE = "active"
    DRAINING = "draining"
    STOPPED = "stopped"
    FAILED = "failed"


@dataclass(frozen=True)
class ReplicaInfo:
    """The slice of one replica's state a control decision may read.

    Attributes
    ----------
    index:
        Fleet-wide replica index (monotonically increasing over boots;
        indices of failed or removed replicas are never reused).
    state:
        Current :class:`ReplicaLifecycle` stage.
    queued / active:
        Requests waiting in the replica's admission queue / currently
        decoding.
    committed_tokens:
        Projected KV tokens (prompt plus full decode length) of the
        replica's queued-plus-in-flight requests.
    capacity_tokens:
        Projected KV tokens the replica can hold in total; together with
        ``committed_tokens`` this defines the admission headroom.
    clock_s:
        The replica's position on the simulation clock.
    """

    index: int
    state: ReplicaLifecycle
    queued: int
    active: int
    committed_tokens: int
    capacity_tokens: int
    clock_s: float

    @property
    def in_system(self) -> int:
        """Requests the replica holds (queued plus decoding)."""
        return self.queued + self.active

    @property
    def headroom_tokens(self) -> int:
        """Projected KV tokens of capacity still uncommitted (floored at 0)."""
        return max(self.capacity_tokens - self.committed_tokens, 0)


@dataclass(frozen=True)
class FleetView:
    """Frozen snapshot of the whole fleet at one decision instant.

    Attributes
    ----------
    now_s:
        The instant on the simulation clock the snapshot was taken.
    replicas:
        Live replicas (``STARTING``, ``ACTIVE`` and ``DRAINING``) in
        index order; stopped and failed replicas are history, not state.
    parked:
        Admitted requests waiting because no replica currently accepts
        traffic (e.g. right after a failure, while the replacement warms
        up).
    recent_slo_attainment:
        Fraction of recently completed requests that met the SLO
        deadlines, over the simulator's fixed fleet-level window
        (``RECENT_SLO_WINDOW`` completions); ``None`` before the first
        completion.  Informational: a policy that wants a *configurable*
        window keeps its own through
        :meth:`~repro.cluster.autoscaler.Autoscaler.observe`, as the
        built-in ``slo_attainment`` autoscaler does.
    min_replicas / max_replicas:
        The provisioning bounds the control plane must respect.
    """

    now_s: float
    replicas: tuple[ReplicaInfo, ...]
    parked: int = 0
    recent_slo_attainment: float | None = None
    min_replicas: int = 1
    max_replicas: int = 1

    @property
    def accepting(self) -> tuple[ReplicaInfo, ...]:
        """Replicas that may receive new requests (``ACTIVE`` only)."""
        return tuple(
            r for r in self.replicas if r.state is ReplicaLifecycle.ACTIVE
        )

    @property
    def provisioned(self) -> int:
        """Replicas that count toward the fleet size bound.

        ``STARTING`` plus ``ACTIVE``: draining replicas are on their way
        out and no longer occupy a provisioning slot, so a scale-up may
        replace them immediately.
        """
        return sum(
            1
            for r in self.replicas
            if r.state in (ReplicaLifecycle.STARTING, ReplicaLifecycle.ACTIVE)
        )

    @property
    def backlog(self) -> int:
        """Requests not yet decoding anywhere (parked plus queued)."""
        return self.parked + sum(r.queued for r in self.replicas)

    @property
    def max_headroom_tokens(self) -> int:
        """Largest admission headroom over the accepting replicas (0 if none)."""
        return max((r.headroom_tokens for r in self.accepting), default=0)
