"""Cluster benchmark: elastic serving under load for ``repro cluster-bench``.

Extends the traffic benchmark with the control plane: the same seeded
workloads (arrival process x request-shape mix, or a replayed trace) are
simulated over an *elastic* fleet with an autoscaler, an admission policy
and an optional failure plan.  On the default perfmodel clock the whole
benchmark — including every scaling decision, rejection and failure
retry — is arithmetic on seeded inputs, so a given configuration prints
byte-identical numbers on any machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..traffic.bench import TrafficBenchConfig, build_bench_requests, format_traffic_report
from ..traffic.report import TrafficReport
from .admission import AdmissionPolicy
from .autoscaler import Autoscaler
from .failures import FailurePlan
from .simulator import ClusterConfig, simulate_cluster

__all__ = ["ClusterBenchConfig", "run_cluster_bench", "format_cluster_report"]


@dataclass(frozen=True)
class ClusterBenchConfig(TrafficBenchConfig):
    """Workload plus control-plane shape of the cluster benchmark.

    Inherits every workload knob of
    :class:`~repro.traffic.bench.TrafficBenchConfig` (arrival process,
    request shapes, policies, SLO, seed, trace replay).  The fleet is
    described by ``min_replicas``/``max_replicas`` instead of the static
    ``num_replicas``, which the cluster benchmark ignores.

    Attributes
    ----------
    min_replicas / max_replicas:
        Provisioning bounds of the elastic fleet.
    autoscaler / admission:
        Control-plane policies as instances or compact spec strings
        (``"slo_attainment:target=0.9"``, ``"token_budget"``).
    failures:
        Failure-injection plan (empty by default).
    max_retries:
        Failure re-dispatch budget per request.
    migrate_on_drain:
        Checkpoint-migrate in-flight requests off draining replicas
        instead of waiting for them to finish
        (:attr:`~repro.cluster.ClusterConfig.migrate_on_drain`).
    checkpoint_interval_s:
        Periodic checkpoint interval for failure recovery
        (:attr:`~repro.cluster.ClusterConfig.checkpoint_interval_s`;
        ``None`` disables periodic checkpoints).
    """

    min_replicas: int = 1
    max_replicas: int = 4
    autoscaler: Autoscaler | str = "slo_attainment"
    admission: AdmissionPolicy | str = "always"
    failures: FailurePlan = field(default_factory=FailurePlan)
    max_retries: int = 3
    migrate_on_drain: bool = False
    checkpoint_interval_s: float | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.min_replicas < 1:
            raise ValueError("min_replicas must be at least 1")
        if self.max_replicas < self.min_replicas:
            raise ValueError("max_replicas must be >= min_replicas")

    def cluster_config(self) -> ClusterConfig:
        """The simulation configuration of this benchmark."""
        return ClusterConfig(
            engine=self.engine_spec(),
            min_replicas=self.min_replicas,
            max_replicas=self.max_replicas,
            autoscaler=self.autoscaler,
            admission=self.admission,
            router=self.router,
            clock=self.clock,
            arch=self.arch,
            context_scale=self.context_scale,
            slo=self.slo,
            failures=self.failures,
            max_retries=self.max_retries,
            migrate_on_drain=self.migrate_on_drain,
            checkpoint_interval_s=self.checkpoint_interval_s,
            workers=self.workers,
        )


def run_cluster_bench(config: ClusterBenchConfig | None = None) -> TrafficReport:
    """Simulate the benchmark workload over the elastic fleet."""
    config = config or ClusterBenchConfig()
    return simulate_cluster(build_bench_requests(config), config.cluster_config())


def format_cluster_report(report: TrafficReport) -> str:
    """Human-readable table of one cluster-simulation report.

    The traffic table first, then the control-plane outcome: autoscaler
    and admission identity, rejection/retry counters and the scaling
    timeline (boot / ready / drain / remove / fail transitions).
    """
    lines = [format_traffic_report(report)]
    autoscaler = report.autoscaler.get("name", "?")
    bounds = (
        f"[{report.autoscaler.get('min_replicas', '?')}, "
        f"{report.autoscaler.get('max_replicas', '?')}]"
    )
    admission = report.admission.get("name", "?")
    lines.append(
        f"cluster: autoscaler={autoscaler} bounds={bounds} admission={admission}  "
        f"peak replicas: {report.num_replicas}"
    )
    lines.append(
        f"retries: {report.num_retries}  lost tokens: {report.lost_tokens}  "
        f"failures: {len(report.failures)}"
    )
    if report.num_migrations or report.num_recoveries:
        lines.append(
            f"migrations: {report.num_migrations}  "
            f"checkpoint recoveries: {report.num_recoveries}"
        )
    if report.scaling:
        lines.append("scaling timeline:")
        for entry in report.scaling:
            lines.append(
                f"  t={entry['time_s']:8.2f}s {entry['action']:<6} "
                f"replica {entry['replica']} (fleet {entry['provisioned']}) "
                f"- {entry['reason']}"
            )
    return "\n".join(lines)
