"""Elastic cluster serving: autoscaling, admission control, failure injection.

This subsystem is the control plane over the :mod:`repro.traffic`
simulator's replica set — the layer that decides how much capacity
exists, which requests get in, and what happens when a replica dies:

* :mod:`~repro.cluster.autoscaler` — pluggable fleet-sizing policies
  (``static``, ``queue_depth``, ``slo_attainment``, ``interactive_slo``)
  deciding on frozen :class:`FleetView` snapshots; scale-ups pay a
  warm-up cost priced by the perfmodel, scale-downs drain (finish
  in-flight work, then remove) or — with ``migrate_on_drain`` —
  checkpoint-migrate their in-flight requests to other replicas through
  :mod:`repro.seqstate` and remove immediately;
* :mod:`~repro.cluster.admission` — pluggable door policies (``always``,
  ``token_budget``, ``queue_deadline``, ``slo_class``) that reject early
  instead of blowing the tail, with rejections first-class in the report;
* :mod:`~repro.cluster.failures` — seeded :class:`FailurePlan` schedules
  that kill replicas (or, with ``num_zones``, whole correlated zones)
  mid-run; lost requests re-dispatch deterministically from their
  prompts — or, with ``checkpoint_interval_s``, resume from their last
  periodic checkpoint with only the post-checkpoint tokens lost — and
  reproduce their failure-free outputs token for token.

Entry points: :func:`simulate_cluster` (also reachable through the
cluster knobs of :func:`repro.api.simulate`), :func:`run_cluster_bench`
behind the ``repro cluster-bench`` CLI command, and the registries
(:func:`build_autoscaler`, :func:`build_admission`) that make both
policy families pluggable the same way :mod:`repro.policies` makes
compression methods pluggable.
"""

from .admission import (
    AdmissionDecision,
    AdmissionPolicy,
    AlwaysAdmit,
    QueueDeadlineAdmission,
    SLOClassAdmission,
    TokenBudgetAdmission,
    admission_names,
    build_admission,
    register_admission,
    resolve_admission,
)
from .autoscaler import (
    Autoscaler,
    InteractiveSLOAutoscaler,
    QueueDepthAutoscaler,
    ScaleDecision,
    SLOAttainmentAutoscaler,
    StaticAutoscaler,
    autoscaler_names,
    build_autoscaler,
    register_autoscaler,
    resolve_autoscaler,
)
from .bench import ClusterBenchConfig, format_cluster_report, run_cluster_bench
from .failures import FailureEvent, FailurePlan
from .fleet import FleetView, ReplicaInfo, ReplicaLifecycle
from .simulator import ClusterConfig, ClusterReplica, ClusterSimulator, simulate_cluster

__all__ = [
    "ReplicaLifecycle",
    "ReplicaInfo",
    "FleetView",
    "ScaleDecision",
    "Autoscaler",
    "StaticAutoscaler",
    "QueueDepthAutoscaler",
    "SLOAttainmentAutoscaler",
    "InteractiveSLOAutoscaler",
    "register_autoscaler",
    "build_autoscaler",
    "resolve_autoscaler",
    "autoscaler_names",
    "AdmissionDecision",
    "AdmissionPolicy",
    "AlwaysAdmit",
    "TokenBudgetAdmission",
    "QueueDeadlineAdmission",
    "SLOClassAdmission",
    "register_admission",
    "build_admission",
    "resolve_admission",
    "admission_names",
    "FailureEvent",
    "FailurePlan",
    "ClusterConfig",
    "ClusterReplica",
    "ClusterSimulator",
    "simulate_cluster",
    "ClusterBenchConfig",
    "run_cluster_bench",
    "format_cluster_report",
]
