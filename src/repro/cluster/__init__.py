"""Elastic cluster serving: autoscaling, admission control, failure injection.

This subsystem is the control plane over the :mod:`repro.traffic`
simulator's replica set — the layer that decides how much capacity
exists, which requests get in, and what happens when a replica dies:

* :mod:`~repro.cluster.autoscaler` — pluggable fleet-sizing policies
  (``static``, ``queue_depth``, ``slo_attainment``) deciding on frozen
  :class:`FleetView` snapshots; scale-ups pay a warm-up cost priced by
  the perfmodel, scale-downs drain (finish in-flight work, then remove);
* :mod:`~repro.cluster.admission` — pluggable door policies (``always``,
  ``token_budget``, ``queue_deadline``) that reject early instead of
  blowing the tail, with rejections first-class in the report;
* :mod:`~repro.cluster.failures` — seeded :class:`FailurePlan` schedules
  that kill replicas mid-run; lost requests are re-dispatched
  deterministically from their prompts and reproduce their failure-free
  outputs token for token.

Entry points: :func:`simulate_cluster` (also reachable through the
cluster knobs of :func:`repro.api.simulate`), :func:`run_cluster_bench`
behind the ``repro cluster-bench`` CLI command, and the registries
(:func:`build_autoscaler`, :func:`build_admission`) that make both
policy families pluggable the same way :mod:`repro.policies` makes
compression methods pluggable.
"""

from .admission import (
    AdmissionDecision,
    AdmissionPolicy,
    AlwaysAdmit,
    QueueDeadlineAdmission,
    TokenBudgetAdmission,
    admission_names,
    build_admission,
    register_admission,
    resolve_admission,
)
from .autoscaler import (
    Autoscaler,
    QueueDepthAutoscaler,
    ScaleDecision,
    SLOAttainmentAutoscaler,
    StaticAutoscaler,
    autoscaler_names,
    build_autoscaler,
    register_autoscaler,
    resolve_autoscaler,
)
from .bench import ClusterBenchConfig, format_cluster_report, run_cluster_bench
from .failures import FailureEvent, FailurePlan
from .fleet import FleetView, ReplicaInfo, ReplicaLifecycle
from .simulator import ClusterConfig, ClusterReplica, ClusterSimulator, simulate_cluster

__all__ = [
    "ReplicaLifecycle",
    "ReplicaInfo",
    "FleetView",
    "ScaleDecision",
    "Autoscaler",
    "StaticAutoscaler",
    "QueueDepthAutoscaler",
    "SLOAttainmentAutoscaler",
    "register_autoscaler",
    "build_autoscaler",
    "resolve_autoscaler",
    "autoscaler_names",
    "AdmissionDecision",
    "AdmissionPolicy",
    "AlwaysAdmit",
    "TokenBudgetAdmission",
    "QueueDeadlineAdmission",
    "register_admission",
    "build_admission",
    "resolve_admission",
    "admission_names",
    "FailureEvent",
    "FailurePlan",
    "ClusterConfig",
    "ClusterReplica",
    "ClusterSimulator",
    "simulate_cluster",
    "ClusterBenchConfig",
    "run_cluster_bench",
    "format_cluster_report",
]
