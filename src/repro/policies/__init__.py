"""Public policy registry: declarative, pluggable KV compression methods.

This package is the single place where KV compression methods are named:

* :class:`PolicySpec` — a declarative ``(name, kwargs)`` description of a
  method, round-trippable to/from dict, JSON and the compact CLI string
  form ``"name:key=value,..."``.
* :func:`register_policy` — class decorator with which every
  :class:`~repro.baselines.base.KVSelectorFactory` (built-in or
  third-party) self-registers by name.
* :func:`build_policy` — resolve a spec or name into a configured factory;
  unknown names raise :class:`UnknownPolicyError`, whose message lists all
  registered names.
* :func:`policy_spec_of` — recover the spec of a live factory from its
  ``describe()`` output (the registry round-trip).

The experiments, the serving engine, the CLI and :mod:`repro.api` all
resolve methods through this registry, so registering a new selector makes
it available everywhere at once — no core file needs to change.
"""

from .registry import (
    RegisteredPolicy,
    UnknownPolicyError,
    available_policies,
    build_policy,
    policy_names,
    policy_spec_from_description,
    policy_spec_of,
    register_policy,
    resolve_policy_spec,
)
from .spec import PolicySpec, coerce_policy_value

# Importing the built-in selector modules triggers their self-registration.
# (``import repro`` does this anyway; these imports cover direct
# ``import repro.policies`` uses and make the dependency explicit.)
from .. import baselines as _baselines  # noqa: F401  (registration side-effect)
from .. import core as _core  # noqa: F401  (registration side-effect)

__all__ = [
    "PolicySpec",
    "RegisteredPolicy",
    "UnknownPolicyError",
    "available_policies",
    "build_policy",
    "coerce_policy_value",
    "policy_names",
    "policy_spec_from_description",
    "policy_spec_of",
    "register_policy",
    "resolve_policy_spec",
]
