"""Declarative description of a KV compression policy.

A :class:`PolicySpec` is the serialisable counterpart of a
:class:`~repro.baselines.base.KVSelectorFactory`: a method name plus the
keyword arguments of that method's configuration class.  Specs round-trip
to and from plain dictionaries and JSON without losing information, so a
policy can travel through config files and HTTP payloads; the compact CLI
string form ``"name:key=value,key=value"`` also round-trips for the
scalar-valued configs every built-in uses (``to_cli`` refuses values the
string form cannot represent faithfully).

Specs are *declarative* — building the actual selector factory is the job
of the registry (:func:`repro.policies.build_policy`), which is also where
the name is validated against the set of registered methods.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

__all__ = ["PolicySpec", "coerce_policy_value"]


def _rebuild(name: str, kwargs: dict[str, object]) -> "PolicySpec":
    """Reconstruct a spec from plain data (pickle/copy support)."""
    return PolicySpec(name, kwargs)


def coerce_policy_value(text: str) -> object:
    """Parse one CLI ``key=value`` value into int, float, bool, None or str.

    The coercion order mirrors what the configuration classes expect:
    ``"16"`` becomes an int, ``"0.25"`` a float, ``"true"``/``"false"``
    a bool, ``"none"``/``"null"`` becomes ``None``, anything else stays a
    string (e.g. ``distance_metric=cosine``).
    """
    lowered = text.strip().lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    if lowered in ("none", "null"):
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text.strip()


@dataclass(frozen=True)
class PolicySpec:
    """A KV compression policy by name plus configuration kwargs.

    Attributes
    ----------
    name:
        Registered method name (``"clusterkv"``, ``"quest"``, ...).
    kwargs:
        Keyword arguments of the method's configuration class; empty for
        methods that take no configuration.  Stored read-only so a spec can
        be shared between requests safely.
    """

    name: str
    kwargs: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError("policy name must be a non-empty string")
        object.__setattr__(self, "kwargs", MappingProxyType(dict(self.kwargs)))

    def __hash__(self) -> int:
        # The generated frozen-dataclass hash would hash the mappingproxy
        # (TypeError); hash the canonical items instead so specs work as
        # set members and dict keys.  Unhashable kwarg values (JSON lists,
        # nested dicts) hash via their canonical JSON form so equal specs
        # hash equal regardless of insertion order.
        def canonical(value: object) -> object:
            try:
                hash(value)
            except TypeError:
                return json.dumps(value, sort_keys=True, default=repr)
            return value

        return hash(
            (self.name, tuple(sorted((k, canonical(v)) for k, v in self.kwargs.items())))
        )

    def __reduce__(self):
        # The mappingproxy kwargs cannot be pickled or deep-copied; rebuild
        # from plain data instead (pickle and copy both honour __reduce__).
        return (_rebuild, (self.name, dict(self.kwargs)))

    # ------------------------------------------------------------------
    # dict / JSON round-trip
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        """Flat dictionary form: ``{"name": ..., **kwargs}``."""
        payload: dict[str, object] = {"name": self.name}
        payload.update(self.kwargs)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "PolicySpec":
        """Rebuild a spec from :meth:`to_dict` output (extra keys are kwargs)."""
        data = dict(payload)
        try:
            name = data.pop("name")
        except KeyError:
            raise ValueError("policy dict must contain a 'name' key") from None
        if not isinstance(name, str):
            raise ValueError(f"policy name must be a string, got {name!r}")
        return cls(name=name, kwargs=data)

    def to_json(self) -> str:
        """JSON form of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "PolicySpec":
        """Rebuild a spec from :meth:`to_json` output."""
        payload = json.loads(text)
        if not isinstance(payload, dict):
            raise ValueError("policy JSON must be an object")
        return cls.from_dict(payload)

    # ------------------------------------------------------------------
    # CLI string round-trip
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "PolicySpec":
        """Parse the compact CLI form ``"name"`` or ``"name:k=v,k=v"``.

        Values are coerced with :func:`coerce_policy_value`, e.g.
        ``"clusterkv:tokens_per_cluster=32,distance_metric=cosine"``.
        """
        text = text.strip()
        if not text:
            raise ValueError("policy string must not be empty")
        name, _, rest = text.partition(":")
        name = name.strip()
        kwargs: dict[str, object] = {}
        if rest.strip():
            for item in rest.split(","):
                key, sep, value = item.partition("=")
                if not sep or not key.strip():
                    raise ValueError(
                        f"malformed policy argument {item!r} in {text!r}; "
                        "expected key=value"
                    )
                kwargs[key.strip()] = coerce_policy_value(value)
        return cls(name=name, kwargs=kwargs)

    def to_cli(self) -> str:
        """Render the compact CLI form parsed by :meth:`parse`.

        The CLI form is less expressive than dict/JSON: values must
        re-coerce to themselves and may not contain ``,`` or ``=``.  A
        spec whose kwargs cannot survive the round trip (e.g. the string
        ``"16"``, which would come back as the int 16) raises instead of
        silently corrupting — use :meth:`to_json` for such specs.
        """
        if not self.kwargs:
            return self.name
        parts = []
        for key, value in sorted(self.kwargs.items()):
            rendered = f"{value}"
            if "," in rendered or "=" in rendered or coerce_policy_value(rendered) != value:
                raise ValueError(
                    f"kwarg {key}={value!r} does not survive the CLI string "
                    "form; serialise this spec with to_json() instead"
                )
            parts.append(f"{key}={rendered}")
        return f"{self.name}:{','.join(parts)}"
