"""Registry mapping policy names to selector-factory classes.

Every KV compression method self-registers at import time by decorating its
:class:`~repro.baselines.base.KVSelectorFactory` subclass with
:func:`register_policy`.  Everything that needs a selector — the
experiments, the serving engine, the CLI and the :mod:`repro.api` session
layer — resolves methods through :func:`build_policy`, so adding a method
(including a third-party one living outside this package) never touches
core files: registering the factory makes it available everywhere at once.

The registry is intentionally declarative-first: the canonical input is a
:class:`~repro.policies.spec.PolicySpec` (name + config kwargs), and
:func:`policy_spec_of` recovers the spec of a live factory from its
``describe()`` output, giving a full round trip
``PolicySpec -> factory -> describe() -> PolicySpec``.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, TypeVar

from .spec import PolicySpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..baselines.base import KVSelectorFactory

__all__ = [
    "UnknownPolicyError",
    "RegisteredPolicy",
    "register_policy",
    "build_policy",
    "available_policies",
    "policy_names",
    "policy_spec_of",
    "policy_spec_from_description",
    "resolve_policy_spec",
]

_FactoryT = TypeVar("_FactoryT", bound=type)

# Description keys that are identity/runtime metadata, not config kwargs.
_NON_CONFIG_KEYS = ("name", "kv_residency")


class UnknownPolicyError(ValueError):
    """Raised for a policy name that no registered method answers to.

    The message lists every registered name so that a typo on the command
    line (``repro serve-bench --methods typo``) is self-diagnosing.
    """

    def __init__(self, name: str) -> None:
        known = ", ".join(policy_names()) or "<none registered>"
        super().__init__(
            f"unknown policy {name!r}; registered policies: {known}"
        )
        self.name = name

    def __reduce__(self):
        # args holds the formatted message, not the constructor argument;
        # rebuild from the name so pickling (multiprocessing, pytest-xdist)
        # does not wrap the message a second time.
        return (UnknownPolicyError, (self.name,))


@dataclass(frozen=True)
class RegisteredPolicy:
    """One registry entry: the factory class plus how to configure it.

    Attributes
    ----------
    name:
        Public method name the entry answers to.
    factory_cls:
        The :class:`~repro.baselines.base.KVSelectorFactory` subclass.
    config_cls:
        Configuration class whose instance the factory takes as its single
        constructor argument; ``None`` for factories built without
        configuration (``full``, ``streaming_llm``, ``oracle``).
    summary:
        One-line description shown by ``repro list``.
    """

    name: str
    factory_cls: type
    config_cls: type | None
    summary: str

    def config_parameters(self) -> tuple[str, ...]:
        """Names of the configuration kwargs this policy accepts."""
        if self.config_cls is None:
            return ()
        params = inspect.signature(self.config_cls).parameters
        return tuple(
            name
            for name, param in params.items()
            if param.kind
            in (inspect.Parameter.POSITIONAL_OR_KEYWORD, inspect.Parameter.KEYWORD_ONLY)
        )

    def build(self, kwargs: dict[str, object]) -> "KVSelectorFactory":
        """Instantiate the factory from configuration kwargs."""
        if self.config_cls is None:
            if kwargs:
                raise ValueError(
                    f"policy {self.name!r} accepts no configuration, "
                    f"got {sorted(kwargs)}"
                )
            return self.factory_cls()
        accepted = self.config_parameters()
        unknown = sorted(set(kwargs) - set(accepted))
        if unknown:
            raise ValueError(
                f"unknown {self.name!r} configuration keys {unknown}; "
                f"accepted keys: {', '.join(accepted)}"
            )
        return self.factory_cls(self.config_cls(**kwargs))


_REGISTRY: dict[str, RegisteredPolicy] = {}


def register_policy(
    name: str, config_cls: type | None = None, summary: str = ""
) -> Callable[[_FactoryT], _FactoryT]:
    """Class decorator registering a selector factory under ``name``.

    Parameters
    ----------
    name:
        Public policy name; must be unique across the process.
    config_cls:
        Configuration class the factory constructor takes (as its only
        argument); ``None`` when the factory is built without arguments.
    summary:
        One-line description for ``repro list`` and the docs.

    Re-registering the *same* class under the same name is a no-op (module
    reloads); registering a different class under a taken name raises.
    """

    def decorator(factory_cls: _FactoryT) -> _FactoryT:
        existing = _REGISTRY.get(name)
        # Identity by (module, qualname) rather than the class object so a
        # module re-import (same class, new object) stays a no-op while a
        # different class — even one reusing the class name — is rejected.
        if existing is not None and (
            existing.factory_cls.__module__,
            existing.factory_cls.__qualname__,
        ) != (factory_cls.__module__, factory_cls.__qualname__):
            raise ValueError(
                f"policy name {name!r} is already registered to "
                f"{existing.factory_cls.__module__}."
                f"{existing.factory_cls.__qualname__}"
            )
        _REGISTRY[name] = RegisteredPolicy(
            name=name,
            factory_cls=factory_cls,
            config_cls=config_cls,
            summary=summary or (inspect.getdoc(factory_cls) or "").split("\n")[0],
        )
        return factory_cls

    return decorator


def policy_names() -> tuple[str, ...]:
    """Sorted names of all registered policies."""
    return tuple(sorted(_REGISTRY))


def available_policies() -> dict[str, RegisteredPolicy]:
    """Registered policies keyed by name, in sorted-name order."""
    return {name: _REGISTRY[name] for name in policy_names()}


def resolve_policy_spec(policy: "PolicySpec | str") -> PolicySpec:
    """Normalise a policy argument into a :class:`PolicySpec`.

    Strings go through :meth:`PolicySpec.parse`, so both the bare name
    (``"quest"``) and the compact CLI form (``"quest:page_size=32"``) are
    accepted.
    """
    if isinstance(policy, PolicySpec):
        return policy
    if isinstance(policy, str):
        return PolicySpec.parse(policy)
    raise TypeError(f"expected PolicySpec or str, got {type(policy).__name__}")


def build_policy(policy: "PolicySpec | str") -> "KVSelectorFactory":
    """Instantiate the selector factory a spec (or name string) describes.

    Raises
    ------
    UnknownPolicyError
        If the name is not registered (message lists the known names).
    ValueError
        If the kwargs do not match the policy's configuration class.
    """
    spec = resolve_policy_spec(policy)
    entry = _REGISTRY.get(spec.name)
    if entry is None:
        raise UnknownPolicyError(spec.name)
    return entry.build(dict(spec.kwargs))


def policy_spec_from_description(description: "dict | object") -> PolicySpec:
    """Spec from a ``describe()``-style mapping, metadata keys stripped.

    ``describe()`` output mixes the configuration kwargs with identity
    metadata (``name``, ``kv_residency``); this helper separates them so a
    description embedded in a report (e.g.
    :meth:`repro.serving.ServeReport.policy_descriptions`) rebuilds the
    policy directly through :func:`build_policy`.
    """
    data = dict(description)  # type: ignore[call-overload]
    try:
        name = data.pop("name")
    except KeyError:
        raise ValueError("policy description must contain a 'name' key") from None
    for key in _NON_CONFIG_KEYS:
        data.pop(key, None)
    return PolicySpec(name=str(name), kwargs=data)


def policy_spec_of(factory: "KVSelectorFactory") -> PolicySpec:
    """Recover the declarative spec of a live factory.

    For a registered factory the kwargs are read directly off its config
    object using the registered config class's parameter names — exact by
    construction, with no reliance on how (or whether) the selector
    overrides ``describe()``.  Unregistered factories fall back to their
    ``describe()`` output, which registered policies keep complete (see
    :meth:`~repro.baselines.base.KVSelectorFactory.describe`).  Either
    way the returned spec rebuilds an equivalently configured factory
    through :func:`build_policy` — the registry round-trip the tests
    assert.
    """
    entry = _REGISTRY.get(getattr(factory, "name", ""))
    if entry is not None and isinstance(factory, entry.factory_cls):
        if entry.config_cls is None:
            return PolicySpec(entry.name)
        config = getattr(factory, "config", None)
        parameters = entry.config_parameters()
        if config is not None and all(hasattr(config, p) for p in parameters):
            return PolicySpec(
                entry.name, {p: getattr(config, p) for p in parameters}
            )
    description = dict(factory.describe())
    description.setdefault("name", getattr(factory, "name", "abstract"))
    return policy_spec_from_description(description)
