"""Execution-backend interface: where replica engines live and step.

The traffic and cluster simulators drive their replicas exclusively
through this layer.  A :class:`ReplicaHandle` is the simulator-facing
surface of one :class:`~repro.serving.BatchedEngine` — it may wrap the
engine in-process (:class:`~repro.execbackend.SerialBackend`, bit-for-bit
today's behaviour) or proxy it to a persistent worker process
(:class:`~repro.execbackend.MultiprocessBackend`), in which case every
call crosses a command pipe and the engine's state is mirrored back into
a cached :class:`ReplicaStateView`.

Determinism contract
--------------------
The simulators process events (ready < failure < arrival < step at equal
instants) in exactly the serial order regardless of backend; only the
*compute* of engine steps is allowed to run ahead on workers
(speculation, see :meth:`ReplicaHandle.start_step`).  Speculation is
sound because engines are fully isolated per replica: a replica's next
step depends only on its own engine state, which no other replica's
processing can touch.  The simulators disable speculation in the narrow
cases where the control plane may mutate another replica between steps
(drain-migration, parked work) — those runs execute steps one at a time
through the same handles and stay byte-identical.

A remote handle's cached state view is refreshed only when the
corresponding outcome is *processed* by the simulator (submit, restore,
checkpoint, pop-preempted responses, and :meth:`ReplicaHandle.finish_step`),
never when a speculated step merely finishes computing — so routers,
admission control and autoscalers observe exactly the replica state the
serial backend would show them at the same event.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # imported lazily to keep this module dependency-light
    import numpy as np

    from ..policies import PolicySpec
    from ..seqstate import SequenceCheckpoint
    from ..serving import BatchedEngine, CompletedRequest, EngineSnapshot
    from ..serving.engine import ServeRequest, StepTrace

__all__ = [
    "ReplicaStateView",
    "StepOutcome",
    "ReplicaHandle",
    "ExecutionBackend",
    "WorkerCrashed",
    "engine_state_view",
    "engine_offload_stats",
]


class WorkerCrashed(RuntimeError):
    """A backend worker process died (or its pipe broke) mid-conversation.

    Raised instead of hanging on a dead pipe; carries which worker and
    which command was in flight so the failure is attributable, plus an
    optional ``detail`` string — the parent-side cause (the pipe error
    and the worker's exit code) or the worker's own traceback when one
    made it across the pipe before death.
    """

    def __init__(self, worker: int, command: str, detail: str | None = None) -> None:
        message = (
            f"execution-backend worker {worker} crashed "
            f"while serving command {command!r}"
        )
        if detail:
            message = f"{message}\n{detail}"
        super().__init__(message)
        self.worker = worker
        self.command = command
        self.detail = detail


@dataclass(frozen=True)
class ReplicaStateView:
    """Snapshot of the scheduler-visible state of one replica engine.

    This is everything the simulators, routers and control-plane policies
    read between steps.  The serial backend computes it live from the
    engine; the multiprocess backend mirrors it across the process
    boundary with every state-changing reply.
    """

    queued: int = 0
    active: int = 0
    num_preempted: int = 0
    reserved_kv_bytes: int = 0
    queued_kv_bytes: int = 0
    num_preemptions_total: int = 0
    is_draining: bool = False
    active_request_ids: tuple[str, ...] = ()
    preempted_request_ids: tuple[str, ...] = ()

    def has_work(self) -> bool:
        """Queued, in-flight or preempted requests present."""
        return bool(self.queued or self.active or self.num_preempted)


@dataclass
class StepOutcome:
    """Result of one engine step, however it was computed.

    ``wall_s`` is the host wall time the step's compute took (in the
    worker for the multiprocess backend) — observability only, never part
    of the byte-reproducible report body.
    """

    finished: "list[CompletedRequest]"
    trace: "StepTrace"
    wall_s: float


def engine_state_view(engine: "BatchedEngine") -> ReplicaStateView:
    """Freeze a live engine's scheduler-visible state into a view."""
    return ReplicaStateView(
        queued=len(engine.queue),
        active=engine.num_active,
        num_preempted=engine.num_preempted,
        reserved_kv_bytes=engine.reserved_kv_bytes(),
        queued_kv_bytes=engine.queued_kv_bytes(),
        num_preemptions_total=engine.num_preemptions_total,
        is_draining=engine.is_draining,
        active_request_ids=tuple(engine.active_request_ids),
        preempted_request_ids=tuple(engine.preempted_request_ids),
    )


def engine_offload_stats(engine: "BatchedEngine") -> dict[str, dict[str, int]]:
    """Tier-transfer and peak-residency accounting of one engine.

    The capacity harness reads this after a run (or after a
    :class:`~repro.memory.CapacityExceeded` abort) — through the handle,
    so it works identically for worker-resident engines.
    """
    from ..memory import TransferDirection

    ledger = engine.offload.ledger
    return {
        "transfers": {
            direction.value: ledger.total_bytes(direction)
            for direction in TransferDirection
        },
        "peak_bytes": {
            "gpu": engine.offload.gpu.peak_bytes,
            "cpu": engine.offload.cpu.peak_bytes,
            "ssd": engine.offload.ssd.peak_bytes,
        },
    }


class ReplicaHandle(ABC):
    """Simulator-facing surface of one replica engine.

    Mirrors the :class:`~repro.serving.BatchedEngine` methods the traffic
    and cluster layers use, plus the split ``start_step``/``finish_step``
    pair that lets a backend overlap step compute across replicas.
    """

    # ------------------------------------------------------------------
    # scheduler-visible state (routers / control plane / report)
    # ------------------------------------------------------------------
    @property
    @abstractmethod
    def queued(self) -> int:
        """Requests waiting in the admission queue."""

    @property
    @abstractmethod
    def active(self) -> int:
        """Requests currently holding a decode slot."""

    @property
    @abstractmethod
    def num_preempted(self) -> int:
        """Preempted requests parked as checkpoints."""

    @property
    @abstractmethod
    def reserved_kv_bytes(self) -> int:
        """Projected KV bytes of the in-flight requests."""

    @property
    @abstractmethod
    def queued_kv_bytes(self) -> int:
        """Projected KV bytes of the queued requests."""

    @property
    @abstractmethod
    def num_preemptions_total(self) -> int:
        """Checkpoint preemptions the engine performed so far."""

    @property
    @abstractmethod
    def is_draining(self) -> bool:
        """Whether the engine stopped accepting submissions."""

    @property
    @abstractmethod
    def active_request_ids(self) -> tuple[str, ...]:
        """Ids of the in-flight requests, in admission order."""

    @property
    @abstractmethod
    def preempted_request_ids(self) -> tuple[str, ...]:
        """Ids of the parked preempted requests, in preemption order."""

    def has_work(self) -> bool:
        """Whether the replica has queued, in-flight or preempted requests."""
        return bool(self.queued or self.active or self.num_preempted)

    @property
    def engine(self) -> "BatchedEngine":
        """The wrapped in-process engine (serial backend only)."""
        raise RuntimeError(
            "this replica's engine is worker-resident; drive it through the "
            "handle methods instead of touching the engine directly"
        )

    # ------------------------------------------------------------------
    # engine commands
    # ------------------------------------------------------------------
    @abstractmethod
    def submit(
        self,
        prompt_ids: "np.ndarray",
        request_id: str,
        max_new_tokens: int,
        policy: "PolicySpec | str | None",
        arrival_time_s: float,
        slo_class: str,
    ) -> None:
        """Enqueue one request on the replica engine."""

    @abstractmethod
    def start_step(self) -> None:
        """Begin computing the replica's next engine step.

        For the multiprocess backend this posts the step command and
        returns immediately, letting several replicas compute
        concurrently; the serial backend defers all work to
        :meth:`finish_step` so engine state never runs ahead of the
        simulator (bit-for-bit today's behaviour).
        """

    @abstractmethod
    def finish_step(self) -> StepOutcome:
        """Complete the step begun by :meth:`start_step` and return it."""

    @abstractmethod
    def drain(self) -> None:
        """Flip the engine's submission gate (work in flight continues)."""

    @abstractmethod
    def snapshot(self) -> "EngineSnapshot":
        """Inventory queued and in-flight work (read-only)."""

    @abstractmethod
    def pop_preempted(self) -> "list[SequenceCheckpoint]":
        """Take ownership of the parked preempted checkpoints."""

    @abstractmethod
    def checkpoint_request(
        self, request_id: str, keep: bool = True
    ) -> "SequenceCheckpoint":
        """Checkpoint one in-flight request (evicting it when not kept)."""

    @abstractmethod
    def restore_request(self, checkpoint: "SequenceCheckpoint") -> None:
        """Restore a checkpointed request onto this replica."""

    @abstractmethod
    def prefix_cache_stats(self) -> dict[str, object]:
        """The engine's prefix-cache counters (empty when disabled)."""

    @abstractmethod
    def offload_stats(self) -> dict[str, dict[str, int]]:
        """Tier-transfer/peak accounting (see :func:`engine_offload_stats`)."""


class ExecutionBackend(ABC):
    """Factory and lifecycle owner of a set of replica handles."""

    name: str = "?"

    @abstractmethod
    def create_handle(self) -> ReplicaHandle:
        """Build one fresh replica engine and return its handle."""

    def reset(self) -> None:
        """Discard all engines (handles become dead); keep the substrate."""

    def drain_counters(self) -> None:
        """Fold worker-side perf counters into the caller's active counter.

        No-op for the serial backend, whose engines record straight into
        the process-local counter.  Summation is order-independent, so
        the merged counts are byte-identical to a serial run.
        """

    def describe(self) -> dict[str, object]:
        """Identifying configuration (observability only, never reported)."""
        return {"name": self.name}

    def close(self) -> None:
        """Release all backend resources (processes, shared memory)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
