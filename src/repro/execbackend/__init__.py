"""Execution backends: where replica engines live and how steps run.

``serial`` keeps every :class:`~repro.serving.BatchedEngine` in the
simulator's process and reproduces the pre-backend simulators bit for
bit.  ``multiprocess`` hosts engines in a persistent worker pool sharing
one read-only weight arena, overlapping step compute across cores while
keeping reports, tokens, logprobs and GEMM counters byte-identical (the
determinism argument lives in :mod:`repro.execbackend.base`).
"""

from .base import (
    ExecutionBackend,
    ReplicaHandle,
    ReplicaStateView,
    StepOutcome,
    WorkerCrashed,
    engine_offload_stats,
    engine_state_view,
)
from .mp import MultiprocessBackend
from .serial import LocalReplicaHandle, SerialBackend, build_engine

__all__ = [
    "ExecutionBackend",
    "ReplicaHandle",
    "ReplicaStateView",
    "StepOutcome",
    "WorkerCrashed",
    "SerialBackend",
    "LocalReplicaHandle",
    "MultiprocessBackend",
    "build_engine",
    "engine_state_view",
    "engine_offload_stats",
]
