"""In-process execution backend: today's serial path, bit-for-bit.

Every handle wraps a live :class:`~repro.serving.BatchedEngine` in the
simulator's own process.  ``start_step`` is deliberately lazy — the
engine steps inside :meth:`LocalReplicaHandle.finish_step`, at exactly
the moment the simulator processes the outcome — so engine state never
runs ahead of the event loop and the serial backend reproduces the
pre-backend simulators byte for byte, including mid-burst router and
control-plane observations.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

from ..serving import BatchedEngine
from .base import (
    ExecutionBackend,
    ReplicaHandle,
    StepOutcome,
    engine_offload_stats,
)

if TYPE_CHECKING:
    import numpy as np

    from ..api import EngineSpec
    from ..model import TransformerModel
    from ..policies import PolicySpec
    from ..seqstate import SequenceCheckpoint
    from ..serving import EngineSnapshot

__all__ = ["LocalReplicaHandle", "SerialBackend"]


class LocalReplicaHandle(ReplicaHandle):
    """Handle over an engine living in the simulator's process.

    All state accessors read the engine live, so there is no cached view
    to keep coherent.
    """

    def __init__(self, engine: BatchedEngine) -> None:
        self._engine = engine
        self._step_started = False

    @property
    def engine(self) -> BatchedEngine:
        """The wrapped live engine (serial-backend only)."""
        return self._engine

    # ------------------------------------------------------------------
    # live state
    # ------------------------------------------------------------------
    @property
    def queued(self) -> int:
        """Requests waiting in the engine's admission queue."""
        return len(self._engine.queue)

    @property
    def active(self) -> int:
        """Requests currently decoding in the engine."""
        return self._engine.num_active

    @property
    def num_preempted(self) -> int:
        """Checkpointed-out requests awaiting resumption."""
        return self._engine.num_preempted

    @property
    def reserved_kv_bytes(self) -> int:
        """KV bytes reserved by active sequences."""
        return self._engine.reserved_kv_bytes()

    @property
    def queued_kv_bytes(self) -> int:
        """KV bytes the queued requests will reserve."""
        return self._engine.queued_kv_bytes()

    @property
    def num_preemptions_total(self) -> int:
        """Total preemptions the engine has performed."""
        return self._engine.num_preemptions_total

    @property
    def is_draining(self) -> bool:
        """Whether the engine is refusing new admissions."""
        return self._engine.is_draining

    @property
    def active_request_ids(self) -> tuple[str, ...]:
        """Ids of the requests currently decoding."""
        return tuple(self._engine.active_request_ids)

    @property
    def preempted_request_ids(self) -> tuple[str, ...]:
        """Ids of the checkpointed-out requests."""
        return tuple(self._engine.preempted_request_ids)

    # ------------------------------------------------------------------
    # commands
    # ------------------------------------------------------------------
    def submit(
        self,
        prompt_ids: "np.ndarray",
        request_id: str,
        max_new_tokens: int,
        policy: "PolicySpec | str | None",
        arrival_time_s: float,
        slo_class: str,
    ) -> None:
        """Enqueue one request on the engine."""
        self._engine.submit(
            prompt_ids,
            request_id=request_id,
            max_new_tokens=max_new_tokens,
            policy=policy,
            arrival_time_s=arrival_time_s,
            slo_class=slo_class,
        )

    def start_step(self) -> None:
        """Mark a step as posted (the engine runs in finish_step)."""
        # Lazy on purpose: the engine must not advance before the
        # simulator processes the outcome (see module docstring).
        self._step_started = True

    def finish_step(self) -> StepOutcome:
        """Run one engine step and time it."""
        self._step_started = False
        t0 = time.perf_counter()
        finished = self._engine.step()
        wall_s = time.perf_counter() - t0
        trace = self._engine.last_step_trace
        assert trace is not None
        return StepOutcome(finished=finished, trace=trace, wall_s=wall_s)

    def drain(self) -> None:
        """Stop admitting new requests on the engine."""
        self._engine.drain()

    def snapshot(self) -> "EngineSnapshot":
        """Queue/active snapshot of the engine."""
        return self._engine.snapshot()

    def pop_preempted(self) -> "list[SequenceCheckpoint]":
        """Take the engine's preempted-request checkpoints."""
        return self._engine.pop_preempted()

    def checkpoint_request(
        self, request_id: str, keep: bool = True
    ) -> "SequenceCheckpoint":
        """Checkpoint one request's live sequence state."""
        return self._engine.checkpoint_request(request_id, keep=keep)

    def restore_request(self, checkpoint: "SequenceCheckpoint") -> None:
        """Restore a checkpointed request into the engine."""
        self._engine.restore_request(checkpoint)

    def prefix_cache_stats(self) -> dict[str, object]:
        """Prefix-cache counters of the engine."""
        return self._engine.prefix_cache_stats()

    def offload_stats(self) -> dict[str, dict[str, int]]:
        """Tier transfer/peak accounting of the engine."""
        return engine_offload_stats(self._engine)


def build_engine(model: "TransformerModel", spec: "EngineSpec") -> BatchedEngine:
    """One replica engine from its spec (the single construction recipe).

    Shared by both backends — the multiprocess worker runs exactly this
    against its shared-memory model, which is what makes worker engines
    byte-equivalent to in-process ones.
    """
    return BatchedEngine(
        model,
        selector=spec.build_policy(),
        generation_config=spec.generation_config(),
        scheduler_config=spec.scheduler_config(),
        tiers=spec.tiers,
        speculation=spec.speculation_config(),
    )


class SerialBackend(ExecutionBackend):
    """All replica engines in-process, stepping one at a time."""

    name = "serial"

    def __init__(self, model: "TransformerModel", spec: "EngineSpec") -> None:
        self._model = model
        self._spec = spec

    def create_handle(self) -> LocalReplicaHandle:
        """A fresh in-process engine behind a local handle."""
        return LocalReplicaHandle(build_engine(self._model, self._spec))

    def describe(self) -> dict[str, object]:
        """Identity of this backend (for reports)."""
        return {"name": self.name, "workers": 0}
