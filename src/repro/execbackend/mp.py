"""Multiprocess execution backend: persistent replica workers.

One worker process per replica group hosts full
:class:`~repro.serving.BatchedEngine` instances; replicas are assigned to
workers round-robin at handle creation.  Model weights are materialised
**once** into a :mod:`multiprocessing.shared_memory` block by the parent
and every worker reconstructs its :class:`~repro.model.TransformerModel`
from read-only views into that block — N workers cost one copy of the
float64 parameter arrays, not N.

Command protocol
----------------
The parent talks to each worker over a pipe with self-identifying frames:
requests are ``(command, replica_id, args)`` and replies
``(replica_id, command, status, payload)``.  Because replies carry their
identity, the parent can post several ``step`` commands speculatively
(see :mod:`repro.execbackend.base`), interleave synchronous control
commands (drain / snapshot / checkpoint / restore) on the same pipe, and
still match every reply to its call — replies arriving out of turn are
parked in a buffer until asked for.

Failure semantics
-----------------
An exception raised inside a worker (for example
:class:`~repro.memory.CapacityExceeded` during a sweep-to-failure probe)
is re-raised in the parent with its original type and attributes, so
``except`` clauses behave identically across backends.  A worker that
*dies* surfaces as a typed :class:`~repro.execbackend.WorkerCrashed`
instead of a hang.

Fork safety
-----------
Module-level caches in the model substrate (the RoPE cos/sin table cache
in :mod:`repro.model.tensor_ops`) and instance-level derived weights (the
fused QKV / gate-up projections built in ``TransformerModel.__init__``)
are deterministic functions of the model configuration: a forked worker
inherits bit-identical tables, a spawned worker rebuilds bit-identical
ones, so outputs never drift across processes (pinned by the backend
parity tests, and re-checkable at runtime via
:meth:`MultiprocessBackend.model_digests`).

Worker-side perf counters are folded back into the parent's active
:func:`repro.perf.count_ops` counter when the simulator finishes a run —
addition is order-independent, so merged GEMM counts are byte-identical
to a serial run.
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib
import multiprocessing
import os
import pickle
import time
import traceback
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Iterator

import numpy as np

from ..model import TransformerModel, get_model_config
from ..model.weights import LayerWeights, ModelWeights
from ..perf import count_ops
from ..perf.counters import record
from .base import (
    ExecutionBackend,
    ReplicaHandle,
    ReplicaStateView,
    StepOutcome,
    WorkerCrashed,
    engine_offload_stats,
    engine_state_view,
)
from .serial import build_engine

if TYPE_CHECKING:
    from ..api import EngineSpec
    from ..policies import PolicySpec
    from ..seqstate import SequenceCheckpoint
    from ..serving import EngineSnapshot

__all__ = ["MultiprocessBackend"]

_ALIGN = 64  # byte alignment of each parameter array in the arena


# ----------------------------------------------------------------------
# shared-memory weight arena
# ----------------------------------------------------------------------
def _named_arrays(weights: ModelWeights) -> Iterator[tuple[str, np.ndarray]]:
    """All parameter arrays of a weight set, in a fixed deterministic order."""
    for spec_field in dataclasses.fields(ModelWeights):
        name = spec_field.name
        if name in ("config", "layers"):
            continue
        value = getattr(weights, name)
        if value is not None:
            yield name, value
    for index, layer in enumerate(weights.layers):
        for layer_field in dataclasses.fields(LayerWeights):
            yield f"layers.{index}.{layer_field.name}", getattr(layer, layer_field.name)


class _WeightArena:
    """The float64 parameter arrays of one model, in one shared block.

    The manifest (name, shape, dtype, offset) travels to the workers,
    which map read-only NumPy views at the same offsets — byte-identical
    weights with zero per-worker copies.
    """

    def __init__(self, weights: ModelWeights) -> None:
        entries: list[tuple[str, tuple[int, ...], str, int]] = []
        arrays: list[np.ndarray] = []
        offset = 0
        for name, array in _named_arrays(weights):
            array = np.ascontiguousarray(array)
            offset = -(-offset // _ALIGN) * _ALIGN
            entries.append((name, array.shape, array.dtype.str, offset))
            arrays.append(array)
            offset += array.nbytes
        self.manifest = entries
        self.num_layers = len(weights.layers)
        self.shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        for (name, shape, dtype, start), array in zip(entries, arrays):
            view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=self.shm.buf, offset=start)
            view[...] = array

    def close(self) -> None:
        """Shut down every worker and release the weight arena."""
        try:
            self.shm.close()
            self.shm.unlink()
        except (FileNotFoundError, OSError):
            pass


def _attach_views(
    shm: shared_memory.SharedMemory,
    manifest: list[tuple[str, tuple[int, ...], str, int]],
) -> dict[str, np.ndarray]:
    """Read-only array views into an attached arena, keyed by name."""
    views: dict[str, np.ndarray] = {}
    for name, shape, dtype, offset in manifest:
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=offset)
        view.flags.writeable = False
        views[name] = view
    return views


def _rebuild_weights(
    model_name: str,
    shm: shared_memory.SharedMemory,
    manifest: list[tuple[str, tuple[int, ...], str, int]],
    num_layers: int,
) -> ModelWeights:
    """A :class:`ModelWeights` whose arrays are views into the arena."""
    views = _attach_views(shm, manifest)
    layers = [
        LayerWeights(
            **{
                layer_field.name: views[f"layers.{index}.{layer_field.name}"]
                for layer_field in dataclasses.fields(LayerWeights)
            }
        )
        for index in range(num_layers)
    ]
    top = {
        spec_field.name: views.get(spec_field.name)
        for spec_field in dataclasses.fields(ModelWeights)
        if spec_field.name not in ("config", "layers")
    }
    return ModelWeights(config=get_model_config(model_name), layers=layers, **top)


def _model_digest(model: TransformerModel) -> str:
    """SHA-256 over raw weights and the derived fused projections.

    Equal digests across processes prove the shared-memory views and the
    per-process derived caches (fused QKV / gate-up) carry identical bits.
    """
    digest = hashlib.sha256()
    for name, array in _named_arrays(model.weights):
        digest.update(name.encode())
        digest.update(np.ascontiguousarray(array).tobytes())
    for fused in model._wqkv:
        digest.update(np.ascontiguousarray(fused).tobytes())
    if model._w_gate_up is not None:
        for fused in model._w_gate_up:
            digest.update(np.ascontiguousarray(fused).tobytes())
    return digest.hexdigest()


# ----------------------------------------------------------------------
# exception transport
# ----------------------------------------------------------------------
def _encode_error(exc: BaseException) -> tuple[str, str, tuple, dict, str]:
    """Flatten an exception so the parent can re-raise the original type.

    ``(cls, *args)`` reconstruction breaks on keyword-only constructors
    (e.g. :class:`~repro.memory.CapacityExceeded`), so the instance state
    travels separately and is re-applied over ``cls.__new__``.
    """
    payload = (
        type(exc).__module__,
        type(exc).__qualname__,
        tuple(exc.args),
        dict(getattr(exc, "__dict__", {})),
        traceback.format_exc(),
    )
    try:
        pickle.dumps(payload)
        return payload
    except (pickle.PicklingError, TypeError, AttributeError, ValueError):
        # Exactly the failures CPython's pickle raises for unpicklable
        # objects (reduce errors, unpicklable closures/locks, recursive
        # state); anything else is a real bug that should surface.
        return (
            "builtins",
            "RuntimeError",
            (f"{type(exc).__name__}: {exc}",),
            {},
            traceback.format_exc(),
        )


def _decode_error(payload: tuple[str, str, tuple, dict, str]) -> BaseException:
    """Rebuild the worker's exception (falling back to RuntimeError).

    The fallback covers exactly the ways reconstruction can fail — the
    type's module is missing here, the attribute path is gone, the name
    no longer refers to an exception type, or its ``__new__`` refuses the
    bare call — and carries the worker's full traceback text so the
    original failure is never lost.
    """
    module_name, qualname, args, state, tb = payload
    try:
        obj: object = importlib.import_module(module_name)
        for part in qualname.split("."):
            obj = getattr(obj, part)
        assert isinstance(obj, type) and issubclass(obj, BaseException)
        exc = obj.__new__(obj)
        exc.args = args
        exc.__dict__.update(state)
        return exc
    except (ImportError, AttributeError, AssertionError, TypeError):
        return RuntimeError(
            f"worker raised {module_name}.{qualname}{args}\n--- worker traceback ---\n{tb}"
        )


# ----------------------------------------------------------------------
# worker process
# ----------------------------------------------------------------------
def _worker_main(
    conn,
    model_name: str,
    shm_name: str,
    manifest: list[tuple[str, tuple[int, ...], str, int]],
    num_layers: int,
    spec_blob: bytes,
) -> None:
    """Serve engine commands until ``close`` or pipe EOF.

    Runs with a process-local op counter permanently installed so every
    GEMM/k-means event is tallied; the parent drains the tallies at the
    end of each simulation run.
    """
    # Attaching registers the segment with the process tree's (shared)
    # resource tracker; registrations dedupe, and the parent's unlink at
    # close() retires the single entry — no per-worker unregister needed.
    shm = shared_memory.SharedMemory(name=shm_name)
    spec = pickle.loads(spec_blob)
    weights = _rebuild_weights(model_name, shm, manifest, num_layers)
    model = TransformerModel(get_model_config(model_name), weights=weights)
    engines: dict[str, object] = {}
    try:
        with count_ops() as counter:
            while True:
                try:
                    command, rid, args = conn.recv()
                except (EOFError, OSError):
                    break
                if command == "close":
                    try:
                        conn.send((rid, command, "ok", None))
                    except OSError:
                        # Parent already gone; the ack is best-effort.
                        pass
                    break
                try:
                    payload = _serve(command, rid, args, engines, model, spec, counter)
                    reply = (rid, command, "ok", payload)
                except BaseException as exc:  # noqa: BLE001 — forwarded typed
                    reply = (rid, command, "exc", _encode_error(exc))
                try:
                    conn.send(reply)
                except OSError:
                    # Pipe to the parent broke mid-reply; nothing left to
                    # serve, so exit and let the parent raise WorkerCrashed.
                    break
    finally:
        shm.close()


def _serve(command, rid, args, engines, model, spec, counter):
    """Execute one protocol command against the worker's engine table."""
    if command == "create":
        engines[rid] = build_engine(model, spec)
        return engine_state_view(engines[rid])
    if command == "reset":
        engines.clear()
        return None
    if command == "counters":
        counts = counter.as_dict()
        counter.counts.clear()
        return counts
    if command == "model_digest":
        return _model_digest(model)
    if command == "ping":
        return "pong"
    engine = engines[rid]
    if command == "submit":
        engine.submit(**args[0])
        return engine_state_view(engine)
    if command == "step":
        t0 = time.perf_counter()
        finished = engine.step()
        wall_s = time.perf_counter() - t0
        return (finished, engine.last_step_trace, engine_state_view(engine), wall_s)
    if command == "drain":
        engine.drain()
        return None
    if command == "snapshot":
        return engine.snapshot()
    if command == "pop_preempted":
        return (engine.pop_preempted(), engine_state_view(engine))
    if command == "checkpoint":
        request_id, keep = args
        checkpoint = engine.checkpoint_request(request_id, keep=keep)
        return (checkpoint, engine_state_view(engine))
    if command == "restore":
        engine.restore_request(args[0])
        return engine_state_view(engine)
    if command == "prefix_stats":
        return engine.prefix_cache_stats()
    if command == "offload_stats":
        return engine_offload_stats(engine)
    raise ValueError(f"unknown backend command {command!r}")


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
class _WorkerClient:
    """Parent endpoint of one worker: pipe, process, and reply buffer."""

    def __init__(self, ctx, index: int, worker_args: tuple) -> None:
        self.index = index
        self.conn, child_conn = ctx.Pipe()
        self.process = ctx.Process(
            target=_worker_main, args=(child_conn, *worker_args), daemon=True
        )
        self.process.start()
        child_conn.close()
        # Replies that arrived while waiting for a different call, keyed
        # by (replica_id, command) — at most one in flight per key.
        self._parked: dict[tuple[object, str], tuple] = {}

    def post(self, rid: object, command: str, *args: object) -> None:
        """Send one command without waiting for its reply."""
        try:
            self.conn.send((command, rid, args))
        except (BrokenPipeError, OSError) as exc:
            raise WorkerCrashed(self.index, command, detail=self._crash_detail(exc)) from exc

    def wait(self, rid: object, command: str):
        """Receive the reply of a posted command, parking strangers."""
        key = (rid, command)
        reply = self._parked.pop(key, None)
        while reply is None:
            try:
                frame = self.conn.recv()
            except (EOFError, OSError) as exc:
                raise WorkerCrashed(
                    self.index, command, detail=self._crash_detail(exc)
                ) from exc
            frame_key = (frame[0], frame[1])
            if frame_key == key:
                reply = frame
            else:
                self._parked[frame_key] = frame
        _, _, status, payload = reply
        if status == "exc":
            raise _decode_error(payload)
        return payload

    def call(self, rid: object, command: str, *args: object):
        """Round-trip one command."""
        self.post(rid, command, *args)
        return self.wait(rid, command)

    def _crash_detail(self, exc: BaseException) -> str:
        """Attributable cause for a :class:`WorkerCrashed`: pipe error + exit code.

        The exit code distinguishes a worker the kernel killed (negative:
        signal number, e.g. the OOM killer's -9) from one that exited
        cleanly after its pipe broke, and ``None`` means the process is
        somehow still alive — three very different debugging stories.
        """
        return f"pipe error: {exc!r}; worker exitcode={self.process.exitcode}"

    def shutdown(self) -> None:
        """Best-effort orderly close, then force."""
        try:
            self.conn.send(("close", None, ()))
        except OSError:
            # Worker already dead; terminate/join below still reaps it.
            pass
        self.process.join(timeout=5)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=5)
        try:
            self.conn.close()
        except OSError:
            pass


class RemoteReplicaHandle(ReplicaHandle):
    """Proxy to a worker-resident engine with a cached state view.

    The view refreshes only from replies the simulator has actually
    processed — a speculated step that already ran in the worker stays
    invisible until :meth:`finish_step` — so every parent-side observer
    sees serial-equivalent state (see :mod:`repro.execbackend.base`).
    """

    def __init__(self, client: _WorkerClient, rid: str) -> None:
        self._client = client
        self.rid = rid
        self._view: ReplicaStateView = client.call(rid, "create")
        self._draining = False
        self._step_posted = False

    # ------------------------------------------------------------------
    # cached state
    # ------------------------------------------------------------------
    @property
    def queued(self) -> int:
        """Requests waiting in the worker engine's queue (cached view)."""
        return self._view.queued

    @property
    def active(self) -> int:
        """Requests decoding in the worker engine (cached view)."""
        return self._view.active

    @property
    def num_preempted(self) -> int:
        """Checkpointed-out requests in the worker (cached view)."""
        return self._view.num_preempted

    @property
    def reserved_kv_bytes(self) -> int:
        """KV bytes reserved by active sequences (cached view)."""
        return self._view.reserved_kv_bytes

    @property
    def queued_kv_bytes(self) -> int:
        """KV bytes the queued requests will reserve (cached view)."""
        return self._view.queued_kv_bytes

    @property
    def num_preemptions_total(self) -> int:
        """Total preemptions performed (cached view)."""
        return self._view.num_preemptions_total

    @property
    def is_draining(self) -> bool:
        """Whether the replica is draining (local flag OR view)."""
        return self._draining or self._view.is_draining

    @property
    def active_request_ids(self) -> tuple[str, ...]:
        """Ids of the decoding requests (cached view)."""
        return self._view.active_request_ids

    @property
    def preempted_request_ids(self) -> tuple[str, ...]:
        """Ids of checkpointed-out requests (cached view)."""
        return self._view.preempted_request_ids

    # ------------------------------------------------------------------
    # commands
    # ------------------------------------------------------------------
    def submit(
        self,
        prompt_ids,
        request_id: str,
        max_new_tokens: int,
        policy: "PolicySpec | str | None",
        arrival_time_s: float,
        slo_class: str,
    ) -> None:
        """Send one request to the worker engine; refresh the view."""
        self._view = self._client.call(
            self.rid,
            "submit",
            {
                "prompt_ids": prompt_ids,
                "request_id": request_id,
                "max_new_tokens": max_new_tokens,
                "policy": policy,
                "arrival_time_s": arrival_time_s,
                "slo_class": slo_class,
            },
        )

    def start_step(self) -> None:
        """Post the step command to the worker without waiting."""
        if not self._step_posted:
            self._client.post(self.rid, "step")
            self._step_posted = True

    def finish_step(self) -> StepOutcome:
        """Receive the step outcome, refreshing the cached view."""
        if not self._step_posted:
            self.start_step()
        finished, trace, view, wall_s = self._client.wait(self.rid, "step")
        self._step_posted = False
        self._view = view
        return StepOutcome(finished=finished, trace=trace, wall_s=wall_s)

    def drain(self) -> None:
        """Tell the worker engine to stop admitting (reply view dropped)."""
        # The returned view is deliberately dropped: a speculated step may
        # already have run in the worker, and the drain reply would leak
        # its post-step state ahead of the simulator processing it.
        self._client.call(self.rid, "drain")
        self._draining = True

    def snapshot(self) -> "EngineSnapshot":
        """Queue/active snapshot fetched from the worker."""
        return self._client.call(self.rid, "snapshot")

    def pop_preempted(self) -> "list[SequenceCheckpoint]":
        """Take the worker's preempted checkpoints; refresh the view."""
        checkpoints, self._view = self._client.call(self.rid, "pop_preempted")
        return checkpoints

    def checkpoint_request(
        self, request_id: str, keep: bool = True
    ) -> "SequenceCheckpoint":
        """Checkpoint one request in the worker; refresh the view."""
        checkpoint, self._view = self._client.call(
            self.rid, "checkpoint", request_id, keep
        )
        return checkpoint

    def restore_request(self, checkpoint: "SequenceCheckpoint") -> None:
        """Restore a checkpoint into the worker; refresh the view."""
        self._view = self._client.call(self.rid, "restore", checkpoint)

    def prefix_cache_stats(self) -> dict[str, object]:
        """Prefix-cache counters fetched from the worker."""
        return self._client.call(self.rid, "prefix_stats")

    def offload_stats(self) -> dict[str, dict[str, int]]:
        """Tier transfer/peak accounting fetched from the worker."""
        return self._client.call(self.rid, "offload_stats")


class MultiprocessBackend(ExecutionBackend):
    """Persistent worker pool sharing one read-only weight arena."""

    name = "multiprocess"

    def __init__(
        self,
        model: TransformerModel,
        spec: "EngineSpec",
        workers: int,
        start_method: str | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if start_method is None:
            available = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in available else "spawn"
        self.start_method = start_method
        self.workers = workers
        ctx = multiprocessing.get_context(start_method)
        self._arena = _WeightArena(model.weights)
        worker_args = (
            spec.model,
            self._arena.shm.name,
            self._arena.manifest,
            self._arena.num_layers,
            pickle.dumps(spec),
        )
        self._clients = [_WorkerClient(ctx, i, worker_args) for i in range(workers)]
        self._next_handle = 0
        self._closed = False

    def create_handle(self) -> RemoteReplicaHandle:
        """A handle over a fresh engine in the next worker (round-robin)."""
        client = self._clients[self._next_handle % len(self._clients)]
        # Replica ids stay unique across reset() so stale parked replies
        # from an aborted run can never alias a new replica.
        rid = f"r{self._next_handle}"
        self._next_handle += 1
        return RemoteReplicaHandle(client, rid)

    def reset(self) -> None:
        """Discard every worker engine and stale parked replies."""
        for client in self._clients:
            client.call(None, "reset")
            client._parked.clear()

    def drain_counters(self) -> None:
        """Merge each worker's op counters into the parent's."""
        for client in self._clients:
            counts = client.call(None, "counters")
            for name in sorted(counts):
                record(name, counts[name])

    def model_digests(self) -> dict[str, str]:
        """Weight digests of the parent model and every worker's copy."""
        digests = {
            f"worker{client.index}": client.call(None, "model_digest")
            for client in self._clients
        }
        return digests

    def describe(self) -> dict[str, object]:
        """Identity of this backend (for reports)."""
        return {
            "name": self.name,
            "workers": self.workers,
            "start_method": self.start_method,
            "cpu_count": os.cpu_count() or 1,
        }

    def close(self) -> None:
        """Shut down every worker and release the weight arena."""
        if self._closed:
            return
        self._closed = True
        for client in self._clients:
            client.shutdown()
        self._arena.close()

    def __del__(self) -> None:  # pragma: no cover — GC safety net
        try:
            self.close()
        except Exception:
            pass
