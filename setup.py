"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that editable installs work with the
legacy (pre-PEP 660) setuptools available in offline environments.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    description=(
        "Reproduction of ClusterKV: Manipulating LLM KV Cache in Semantic "
        "Space for Recallable Compression (DAC 2025)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
)
